"""Campaign orchestrator: policies, provenance, resume, audit, CLI.

The differential and byte-identity properties live in
``test_campaign_properties.py``; the injected-corruption audits in
``test_campaign_audit_negative.py``.  This module covers the concrete
machinery: policy semantics, the provenance log's prefix-verified
append, checkpointed resume executing only the missing plates, and the
``python -m repro campaign`` entry point.
"""

from __future__ import annotations

import json

import pytest

from repro.audit import audit_campaign
from repro.campaign import (
    BUDGET,
    IMMEDIATE,
    SWEEP,
    CampaignConfig,
    ProvenanceLog,
    ProvenanceMismatchError,
    attempt_seed,
    canonical_line,
    policy_by_name,
    read_records,
    run_campaign,
)
from repro.campaign.orchestrator import SEED_STRIDE, _pool_makespan
from repro.cli import main
from repro.montage import campaign_plates
from repro.montage.generator import montage_workflow
from repro.sweep.cache import SimCache


def plates(n: int = 3, name: str = "c-plate") -> tuple:
    return tuple(
        montage_workflow(0.4, jitter=0.05, seed=i, name=f"{name}{i:02d}")
        for i in range(n)
    )


def config(**overrides) -> CampaignConfig:
    kwargs = dict(n_processors=2, n_pools=2, probability=0.0, base_seed=3)
    kwargs.update(overrides)
    return CampaignConfig(**kwargs)


#: High enough that every attempt of a ~40-task plate fails (success
#: would need every task to survive p = 0.9 with no retries).
ALWAYS_FAIL = dict(probability=0.9, max_task_retries=0)


class TestPolicies:
    def test_lookup(self):
        assert policy_by_name("immediate") is IMMEDIATE
        assert policy_by_name("sweep") is SWEEP
        assert policy_by_name("budget") is BUDGET
        with pytest.raises(ValueError, match="unknown resubmission"):
            policy_by_name("bogus")

    def test_only_budget_gates_on_cost(self):
        assert IMMEDIATE.allows_resubmission(1e9, 1.0)
        assert SWEEP.allows_resubmission(1e9, 1.0)
        assert BUDGET.allows_resubmission(0.5, 1.0)
        assert not BUDGET.allows_resubmission(1.0, 1.0)
        # No budget configured: even the budget policy never abandons.
        assert BUDGET.allows_resubmission(1e9, None)

    def test_seed_ladder(self):
        assert attempt_seed(3, 0) == 3
        assert attempt_seed(3, 2) == 3 + 2 * SEED_STRIDE
        # Pure in both arguments — resume re-derives the same seeds.
        assert attempt_seed(3, 2) == attempt_seed(3, 2)


class TestConfig:
    def test_validation(self):
        with pytest.raises(ValueError, match="pool"):
            CampaignConfig(n_pools=0)
        with pytest.raises(ValueError, match="max_plate_attempts"):
            CampaignConfig(max_plate_attempts=0)
        with pytest.raises(ValueError, match="cost_budget"):
            CampaignConfig(cost_budget=-1.0)

    def test_fingerprint_sensitivity(self):
        p = plates(2)
        a = config().fingerprint(p, SWEEP)
        assert a == config().fingerprint(p, SWEEP)
        assert a != config().fingerprint(p, IMMEDIATE)
        assert a != config(base_seed=4).fingerprint(p, SWEEP)
        assert a != config().fingerprint(p[:1], SWEEP)

    def test_pool_makespan(self):
        # Greedy least-loaded, lowest index first: 5|4+3 -> 7.
        assert _pool_makespan([5.0, 4.0, 3.0], 2) == 7.0
        assert _pool_makespan([], 2) == 0.0
        assert _pool_makespan([2.0, 2.0], 1) == 4.0


class TestRunCampaign:
    def test_failure_free_campaign_completes_in_one_pass(self):
        result = run_campaign(plates(3), "sweep", config(), cache=SimCache())
        assert result.n_completed == 3
        assert result.n_abandoned == 0
        assert result.n_passes == 1
        assert all(o.attempts == 1 for o in result.outcomes)
        assert all(o.seed == 3 for o in result.outcomes)
        records = result.log.records()
        assert records[0]["kind"] == "header"
        assert records[-1]["kind"] == "summary"
        report = audit_campaign(result.log)
        assert report.ok, report.summary()

    def test_all_failing_campaign_exhausts_retry_budget(self):
        result = run_campaign(
            plates(2),
            "sweep",
            config(max_plate_attempts=2, **ALWAYS_FAIL),
            cache=SimCache(),
        )
        assert result.n_completed == 0
        assert result.n_abandoned == 2
        assert result.total_attempts == 4
        assert {o.abandoned_reason for o in result.outcomes} == {
            "retry-budget"
        }
        # Every attempt was billed at the plate's failure-free baseline.
        attempts = [
            r for r in result.log.records() if r["kind"] == "attempt"
        ]
        assert all(r["outcome"] == "failed" for r in attempts)
        assert all(r["billed_cost"] > 0 for r in attempts)
        assert audit_campaign(result.log).ok

    def test_budget_policy_abandons_resubmissions(self):
        result = run_campaign(
            plates(2),
            "budget",
            config(cost_budget=1e-6, **ALWAYS_FAIL),
            cache=SimCache(),
        )
        # Pass 0 bills both plates past the budget; pass 1 abandons.
        assert result.n_completed == 0
        assert {o.abandoned_reason for o in result.outcomes} == {
            "cost-budget"
        }
        assert result.total_attempts == 2
        assert audit_campaign(result.log).ok

    def test_immediate_and_sweep_bill_identically(self):
        cfg = config(max_plate_attempts=2, **ALWAYS_FAIL)
        a = run_campaign(plates(3), "immediate", cfg, cache=SimCache())
        b = run_campaign(plates(3), "sweep", cfg, cache=SimCache())
        # Same passes, seeds and bills; only the modeled schedule
        # differs — barriers can only slow a campaign down.
        assert a.total_billed == b.total_billed
        assert [r for r in a.log.records() if r["kind"] == "attempt"] == [
            r for r in b.log.records() if r["kind"] == "attempt"
        ]
        assert a.completion_seconds <= b.completion_seconds

    def test_duplicate_plates_rejected(self):
        p = plates(2)
        with pytest.raises(ValueError, match="distinct content"):
            run_campaign((p[0], p[0]), "sweep", config(), cache=SimCache())
        clone = p[1].copy(name=p[0].name)
        with pytest.raises(ValueError, match="distinct names"):
            run_campaign((p[0], clone), "sweep", config(), cache=SimCache())

    def test_empty_campaign_rejected(self):
        with pytest.raises(ValueError, match="at least one plate"):
            run_campaign((), "sweep", config(), cache=SimCache())


class _Killed(Exception):
    pass


def _kill_after(n: int):
    """An on_attempt hook that raises after the n-th billed attempt."""
    seen = [0]

    def hook(_record):
        seen[0] += 1
        if seen[0] >= n:
            raise _Killed

    return hook


class TestResume:
    def test_resume_executes_only_missing_plates(self, tmp_path):
        p = plates(4)
        cfg = config(max_plate_attempts=2, **ALWAYS_FAIL)
        ref_events: list[str] = []
        ref = run_campaign(
            p,
            "sweep",
            cfg,
            cache=SimCache(tmp_path / "ref-cache"),
            log=ProvenanceLog(tmp_path / "ref.jsonl"),
            progress=ref_events.append,
        )
        ref_executed = sum("executed" in e for e in ref_events)

        # Kill during the pass-0 billing loop, before the second pass's
        # grid has been dispatched.
        log_path = tmp_path / "campaign.jsonl"
        cache_dir = tmp_path / "cache"
        killed_events: list[str] = []
        with pytest.raises(_Killed):
            run_campaign(
                p,
                "sweep",
                cfg,
                cache=SimCache(cache_dir),
                log=ProvenanceLog(log_path),
                on_attempt=_kill_after(2),
                progress=killed_events.append,
            )
        killed_executed = sum("executed" in e for e in killed_events)
        killed_lines = log_path.read_text().splitlines()
        assert 0 < len(killed_lines) < len(ref.log.lines)
        assert killed_executed < ref_executed

        events: list[str] = []
        resumed = run_campaign(
            p,
            "sweep",
            cfg,
            cache=SimCache(cache_dir),
            log=ProvenanceLog(log_path),
            progress=events.append,
        )
        # Everything the killed run checkpointed is answered from the
        # cache; only the pass it never reached is executed.
        n_checkpointed = sum("from checkpoint" in e for e in events)
        n_executed = sum("executed" in e for e in events)
        assert n_checkpointed == killed_executed
        assert n_executed == ref_executed - killed_executed
        assert n_executed > 0
        # The interrupted prefix was verified, the tail appended, and
        # the final log is byte-identical to the uninterrupted one.
        assert resumed.log.replayed == len(killed_lines)
        assert log_path.read_bytes() == (tmp_path / "ref.jsonl").read_bytes()
        assert audit_campaign(log_path).ok

    def test_resume_through_corrupt_checkpoint(self, tmp_path):
        p = plates(3)
        cfg = config(max_plate_attempts=2, **ALWAYS_FAIL)
        log_path = tmp_path / "campaign.jsonl"
        cache_dir = tmp_path / "cache"
        with pytest.raises(_Killed):
            run_campaign(
                p,
                "sweep",
                cfg,
                cache=SimCache(cache_dir),
                log=ProvenanceLog(log_path),
                on_attempt=_kill_after(3),
            )
        # One plate checkpoint rots on disk between kill and resume.
        blob = next(iter(sorted(cache_dir.glob("*/*.blob.pkl"))))
        blob.write_bytes(b"rotten")
        resumed = run_campaign(
            p,
            "sweep",
            cfg,
            cache=SimCache(cache_dir),
            log=ProvenanceLog(log_path),
        )
        assert blob.with_suffix(".corrupt").exists()
        assert resumed.n_abandoned == 3
        assert audit_campaign(log_path).ok

    def test_divergent_resume_raises(self, tmp_path):
        p = plates(2)
        log_path = tmp_path / "campaign.jsonl"
        run_campaign(
            p,
            "sweep",
            config(),
            cache=SimCache(),
            log=ProvenanceLog(log_path),
        )
        with pytest.raises(ProvenanceMismatchError, match="diverges"):
            run_campaign(
                p,
                "sweep",
                config(base_seed=99),
                cache=SimCache(),
                log=ProvenanceLog(log_path),
            )


class TestProvenanceLog:
    def test_roundtrip_and_counters(self, tmp_path):
        path = tmp_path / "log.jsonl"
        log = ProvenanceLog(path)
        log.emit({"kind": "header", "b": 1})
        log.emit({"kind": "attempt", "seq": 0})
        assert len(log) == 2
        assert log.replayed == 0
        assert read_records(path) == log.records()

        reopened = ProvenanceLog(path)
        reopened.emit({"kind": "header", "b": 1})
        reopened.emit({"kind": "attempt", "seq": 0})
        assert reopened.replayed == 2
        reopened.emit({"kind": "attempt", "seq": 1})
        assert reopened.replayed == 2
        assert len(reopened) == 3
        with pytest.raises(ProvenanceMismatchError, match="diverges"):
            # The existing line at this position says seq 0.
            ProvenanceLog(path).emit({"kind": "header", "b": 2})

    def test_canonical_line_is_key_order_independent(self):
        assert canonical_line({"a": 1, "b": 2}) == canonical_line(
            {"b": 2, "a": 1}
        )

    def test_read_records_rejects_garbage(self, tmp_path):
        path = tmp_path / "log.jsonl"
        path.write_text('{"kind":"header"}\nnot json\n')
        with pytest.raises(ProvenanceMismatchError, match="not valid JSON"):
            read_records(path)

    def test_memory_log_has_no_path(self):
        log = ProvenanceLog()
        log.emit({"kind": "header"})
        assert log.path is None
        assert log.lines == (canonical_line({"kind": "header"}),)


class TestCampaignPlates:
    def test_distinct_fingerprints_and_names(self):
        p = campaign_plates(4, degree=0.4)
        assert len({wf.fingerprint() for wf in p}) == 4
        assert len({wf.name for wf in p}) == 4

    def test_validation(self):
        with pytest.raises(ValueError, match="at least one"):
            campaign_plates(0, degree=0.4)
        with pytest.raises(ValueError, match="jitter"):
            campaign_plates(2, degree=0.4, jitter=0.0)


class TestCampaignCli:
    def test_campaign_command_with_audit(self, tmp_path, capsys):
        code = main(
            [
                "campaign",
                "--plates", "2",
                "--degree", "0.4",
                "--policy", "sweep",
                "--probability", "0",
                "--processors", "2",
                "--cache", str(tmp_path / "cache"),
                "--log", str(tmp_path / "log.jsonl"),
                "--audit",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "completed" in out
        assert "OK" in out
        assert json.loads(
            (tmp_path / "log.jsonl").read_text().splitlines()[0]
        )["kind"] == "header"

    def test_campaign_command_budget_policy(self, tmp_path, capsys):
        code = main(
            [
                "campaign",
                "--plates", "2",
                "--degree", "0.4",
                "--policy", "budget",
                "--cost-budget", "1e-6",
                "--probability", "0.9",
                "--max-task-retries", "0",
                "--processors", "2",
                "--cache", str(tmp_path / "cache"),
                "--audit",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "abandoned" in out
