"""Negative campaign audits: doctored provenance logs must be caught.

Mirrors ``tests/audit/test_negative.py`` one level up: each test takes a
genuine campaign's provenance records, injects one specific lie — a
double-billed plate, a dropped retry-justifying failure, an over-budget
resubmission, a doctored bill, seed or summary — and asserts
:func:`repro.audit.audit_campaign` pins it with a ``campaign``
violation.  This is the evidence that the clean audits in
``test_campaign.py`` actually constrain the orchestrator.
"""

from __future__ import annotations

import copy

import pytest

from repro.audit import audit_campaign
from repro.campaign import CampaignConfig, run_campaign
from repro.montage.generator import montage_workflow
from repro.sweep.cache import SimCache

pytestmark = pytest.mark.audit


@pytest.fixture(scope="module")
def records():
    """A real failed campaign's records: retries, abandons, real bills."""
    plates = tuple(
        montage_workflow(0.4, jitter=0.05, seed=i, name=f"neg-plate{i}")
        for i in range(2)
    )
    result = run_campaign(
        plates,
        "sweep",
        CampaignConfig(
            n_processors=2,
            probability=0.9,  # every ~30-task attempt fails
            max_task_retries=0,
            max_plate_attempts=2,
            base_seed=11,
        ),
        cache=SimCache(),
    )
    report = audit_campaign(result.log)
    assert report.ok, report.summary()
    recs = result.log.records()
    # The fixture must contain what the lies below need: a resubmission
    # (attempt 1) justified by a recorded failure (attempt 0).
    assert any(
        r["kind"] == "attempt" and r["attempt"] == 1 for r in recs
    )
    return recs


def _renumbered(records):
    """Re-sequence the body so only the injected lie is out of order."""
    body = records[1:-1]
    for i, rec in enumerate(body):
        rec["seq"] = i
    if records[-1].get("kind") == "summary":
        records[-1]["seq"] = len(body)
    return records


def _violations(records, fragment):
    report = audit_campaign(records)
    assert not report.ok, "corruption went undetected"
    assert all(v.category == "campaign" for v in report.violations)
    assert any(fragment in str(v) for v in report.violations), (
        f"expected a violation mentioning {fragment!r}, got: "
        + "; ".join(str(v) for v in report.violations[:5])
    )
    return report


class TestInjectedLies:
    def test_double_billed_attempt(self, records):
        recs = copy.deepcopy(records)
        i, dup = next(
            (i, r)
            for i, r in enumerate(recs)
            if r["kind"] == "attempt"
        )
        recs.insert(i + 1, copy.deepcopy(dup))
        _violations(_renumbered(recs), "billed twice")

    def test_dropped_retry_justification(self, records):
        # Remove the failed attempt 0 that justifies some attempt 1:
        # the resubmission is now a retry without a recorded failure.
        recs = copy.deepcopy(records)
        resub = next(
            r
            for r in recs
            if r["kind"] == "attempt" and r["attempt"] == 1
        )
        recs = [
            r
            for r in recs
            if not (
                r["kind"] == "attempt"
                and r["plate"] == resub["plate"]
                and r["attempt"] == 0
            )
        ]
        _violations(_renumbered(recs), "justify")

    def test_over_budget_resubmission(self, records):
        # Rewrite history as a budget campaign whose cap the recorded
        # pass-0 spending already exhausted: every recorded attempt-1
        # dispatch is now illegal.
        recs = copy.deepcopy(records)
        first_bill = next(
            r["billed_cost"] for r in recs if r["kind"] == "attempt"
        )
        recs[0]["policy"] = "budget"
        recs[0]["cost_budget"] = first_bill / 2
        _violations(recs, "resubmission dispatched")

    def test_doctored_bill(self, records):
        recs = copy.deepcopy(records)
        victim = next(r for r in recs if r["kind"] == "attempt")
        victim["billed_cost"] *= 0.5
        _violations(recs, "price to")

    def test_doctored_seed(self, records):
        recs = copy.deepcopy(records)
        victim = next(r for r in recs if r["kind"] == "attempt")
        victim["seed"] += 1
        _violations(recs, "derived")

    def test_doctored_summary_total(self, records):
        recs = copy.deepcopy(records)
        assert recs[-1]["kind"] == "summary"
        recs[-1]["total_billed"] *= 2
        _violations(recs, "reconcile")

    def test_phantom_plate(self, records):
        recs = copy.deepcopy(records)
        ghost = copy.deepcopy(
            next(r for r in recs if r["kind"] == "attempt")
        )
        ghost["plate"] = "ghost-plate"
        recs.insert(recs.index(next(
            r for r in recs if r["kind"] == "attempt"
        )), ghost)
        _violations(_renumbered(recs), "manifest")

    def test_unjustified_cost_budget_abandon(self, records):
        # A cost-budget abandon under a non-budget policy is illegal.
        recs = copy.deepcopy(records)
        victim = next(r for r in recs if r["kind"] == "abandon")
        victim["reason"] = "cost-budget"
        _violations(recs, "cost-budget abandon")


class TestStructuralLies:
    def test_missing_header(self, records):
        recs = copy.deepcopy(records)[1:]
        report = audit_campaign(recs)
        assert not report.ok

    def test_missing_summary(self, records):
        recs = copy.deepcopy(records)[:-1]
        _violations(recs, "summary")

    def test_broken_sequencing(self, records):
        recs = copy.deepcopy(records)
        body = [r for r in recs[1:] if r["kind"] != "summary"]
        body[-1]["seq"] += 7
        _violations(recs, "contiguous")

    def test_empty_log_rejected(self):
        _violations([], "empty")
