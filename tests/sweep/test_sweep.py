"""Sweep engine: determinism, memoization and fingerprinting.

The contract under test is the one the experiment harness relies on:
parallel execution and cache hits must be *bit-identical* to a fresh
serial run — same rows, same makespans, same byte counts, same report
text — because the paper-comparison report is compared byte-for-byte
against the seed output.
"""

from __future__ import annotations

import pytest

from repro.audit import AuditError
from repro.experiments.ccr import run_ccr_sweep
from repro.experiments.question1 import run_question1
from repro.sweep import (
    FailureSpec,
    SimCache,
    SimJob,
    SweepExecutor,
    resolve_audit,
    run_jobs,
    set_default_audit,
)
from repro.sweep import cache as cache_module
from repro.sweep import executor as executor_module
from repro.workflow.dag import FileSpec, Task, Workflow


@pytest.fixture
def isolated_default_cache(monkeypatch):
    """A fresh default cache per test, no disk layer, restored after."""
    monkeypatch.delenv(cache_module.CACHE_DIR_ENV, raising=False)
    monkeypatch.delenv("REPRO_SWEEP_WORKERS", raising=False)
    cache_module.reset_default_cache()
    yield cache_module.default_cache()
    cache_module.reset_default_cache()


PROCESSORS = [1, 4, 16]


class TestParallelSerialIdentity:
    def test_question1_parallel_identical_to_serial(
        self, montage1, isolated_default_cache, monkeypatch
    ):
        serial = run_question1(montage1, processors=PROCESSORS)
        cache_module.reset_default_cache()
        monkeypatch.setenv("REPRO_SWEEP_WORKERS", "2")
        parallel = run_question1(montage1, processors=PROCESSORS)
        assert parallel.rows == serial.rows
        assert parallel.as_table() == serial.as_table()
        assert parallel.as_csv() == serial.as_csv()

    def test_ccr_sweep_parallel_identical_to_serial(
        self, montage1, isolated_default_cache, monkeypatch
    ):
        serial = run_ccr_sweep(montage1, ccr_values=(0.1, 0.5, 1.0))
        cache_module.reset_default_cache()
        monkeypatch.setenv("REPRO_SWEEP_WORKERS", "2")
        parallel = run_ccr_sweep(montage1, ccr_values=(0.1, 0.5, 1.0))
        assert parallel.points == serial.points
        assert parallel.as_table() == serial.as_table()
        assert parallel.as_csv() == serial.as_csv()

    def test_results_in_submission_order(self, montage1):
        jobs = [SimJob(montage1, p) for p in (16, 1, 4)]
        results = run_jobs(jobs, workers=2, cache=SimCache())
        assert [r.n_processors for r in results] == [16, 1, 4]
        # Monotone: more processors never lengthens the makespan.
        by_p = {r.n_processors: r.makespan for r in results}
        assert by_p[16] <= by_p[4] <= by_p[1]


class TestMemoization:
    def test_cache_hit_returns_equal_result(self, montage1):
        cache = SimCache()
        executor = SweepExecutor(workers=1, cache=cache)
        job = SimJob(montage1, 4, "cleanup")
        first = executor.run_one(job)
        assert cache.misses == 1 and cache.hits == 0
        second = executor.run_one(job)
        assert cache.hits == 1
        assert second == first

    def test_batch_level_dedup_simulates_once(self, montage1):
        cache = SimCache()
        job = SimJob(montage1, 2)
        results = SweepExecutor(workers=1, cache=cache).run([job, job, job])
        assert len(cache) == 1
        assert results[0] == results[1] == results[2]

    def test_disk_cache_round_trip(self, montage1, tmp_path):
        job = SimJob(montage1, 4)
        first = SweepExecutor(workers=1, cache=SimCache(tmp_path)).run_one(job)
        # A brand-new cache over the same directory answers from disk.
        fresh = SimCache(tmp_path)
        second = SweepExecutor(workers=1, cache=fresh).run_one(job)
        assert fresh.hits == 1 and fresh.misses == 0
        assert second == first

    def test_failure_spec_is_replayable(self, montage1):
        # A stateful FailureModel is rebuilt per execution, so a cache
        # miss after a clear reproduces the identical failure pattern.
        job = SimJob(montage1, 8, failures=FailureSpec(0.05, seed=7))
        first = SweepExecutor(workers=1, cache=SimCache()).run_one(job)
        second = SweepExecutor(workers=1, cache=SimCache()).run_one(job)
        assert first.n_task_failures > 0
        assert second == first


@pytest.mark.audit
class TestAuditedSweeps:
    def test_audited_run_bypasses_cache(self, montage1):
        cache = SimCache()
        executor = SweepExecutor(workers=1, cache=cache, audit=True)
        job = SimJob(montage1, 4)
        first = executor.run_one(job)
        second = executor.run_one(job)
        assert len(cache) == 0  # nothing memoized under audit
        assert executor.audited_jobs == 2
        assert second == first  # deterministic, just recomputed

    def test_audited_results_match_cached_results(self, montage1):
        job = SimJob(montage1, 4, "cleanup")
        plain = SweepExecutor(workers=1, cache=SimCache()).run_one(job)
        audited = SweepExecutor(
            workers=1, cache=SimCache(), audit=True
        ).run_one(job)
        # The audited run forces tracing; aggregates must be identical.
        assert audited.makespan == plain.makespan
        assert audited.bytes_in == plain.bytes_in
        assert audited.storage_byte_seconds == plain.storage_byte_seconds
        assert audited.task_records  # trace forced on

    def test_audited_pool_run_propagates_audit_error(
        self, montage1, monkeypatch
    ):
        # A worker whose audit fails must surface AuditError in the
        # parent, not a pickling crash.
        def broken(job):
            from dataclasses import replace

            from repro.audit import audit_simulation

            traced = replace(job, record_trace=True)
            result = traced.run()
            result.makespan += 1.0  # corrupt before the audit
            audit_simulation(
                result, job.workflow, traced.environment()
            ).raise_if_failed()
            return result

        monkeypatch.setattr(executor_module, "_execute_audited", broken)
        executor = SweepExecutor(workers=1, cache=SimCache(), audit=True)
        with pytest.raises(AuditError):
            executor.run([SimJob(montage1, 2)])

    def test_audit_env_var(self, monkeypatch):
        monkeypatch.delenv(executor_module.AUDIT_ENV, raising=False)
        assert resolve_audit() is False
        monkeypatch.setenv(executor_module.AUDIT_ENV, "1")
        assert resolve_audit() is True
        monkeypatch.setenv(executor_module.AUDIT_ENV, "0")
        assert resolve_audit() is False
        monkeypatch.setenv(executor_module.AUDIT_ENV, "false")
        assert resolve_audit() is False
        # Explicit argument always wins.
        assert resolve_audit(True) is True
        monkeypatch.setenv(executor_module.AUDIT_ENV, "1")
        assert resolve_audit(False) is False

    def test_set_default_audit_round_trip(self, montage1, monkeypatch):
        monkeypatch.delenv(executor_module.AUDIT_ENV, raising=False)
        previous = set_default_audit(True)
        try:
            assert resolve_audit() is True
            executor = SweepExecutor(workers=1, cache=SimCache())
            assert executor.audit is True
            executor.run([SimJob(montage1, 2)])
            assert executor.audited_jobs == 1
        finally:
            set_default_audit(previous)
        assert resolve_audit() is False


def _tiny_workflow(name="wf", size=10.0):
    wf = Workflow(name)
    wf.add_file(FileSpec("a", size))
    wf.add_file(FileSpec("b", size))
    wf.add_task(Task("t", 5.0, inputs=("a",), outputs=("b",)))
    wf.validate()
    return wf


class TestFingerprints:
    def test_workflow_fingerprint_content_addressed(self):
        assert (
            _tiny_workflow().fingerprint() == _tiny_workflow().fingerprint()
        )
        assert (
            _tiny_workflow(size=20.0).fingerprint()
            != _tiny_workflow().fingerprint()
        )
        assert (
            _tiny_workflow(name="other").fingerprint()
            != _tiny_workflow().fingerprint()
        )

    def test_workflow_fingerprint_invalidated_on_mutation(self):
        wf = _tiny_workflow()
        before = wf.fingerprint()
        wf.add_file(FileSpec("c", 1.0))
        wf.add_task(Task("t2", 1.0, inputs=("b",), outputs=("c",)))
        assert wf.fingerprint() != before

    def test_job_fingerprint_covers_parameters(self):
        wf = _tiny_workflow()
        base = SimJob(wf, 2)
        assert SimJob(wf, 2).fingerprint() == base.fingerprint()
        distinct = {
            SimJob(wf, 4).fingerprint(),
            SimJob(wf, 2, "cleanup").fingerprint(),
            SimJob(wf, 2, bandwidth_bytes_per_sec=1e6).fingerprint(),
            SimJob(wf, 2, link_contention=True).fingerprint(),
            SimJob(wf, 2, ordering="longest-first").fingerprint(),
            SimJob(wf, 2, failures=FailureSpec(0.1)).fingerprint(),
            SimJob(wf, 2, record_trace=True).fingerprint(),
            SimJob(wf, 2, kernel="event").fingerprint(),
            base.fingerprint(),
        }
        assert len(distinct) == 9

    def test_kernel_resolved_at_construction(self, monkeypatch):
        # The env var is applied when the job is built, so fingerprints
        # (and cache keys) never depend on the executing process's env.
        wf = _tiny_workflow()
        monkeypatch.delenv("REPRO_SIM_KERNEL", raising=False)
        assert SimJob(wf, 2).kernel == "auto"
        monkeypatch.setenv("REPRO_SIM_KERNEL", "event")
        env_job = SimJob(wf, 2)
        assert env_job.kernel == "event"
        assert env_job.fingerprint() == SimJob(wf, 2, kernel="event").fingerprint()
        with pytest.raises(ValueError):
            SimJob(wf, 2, kernel="turbo")

    def test_invalid_mode_and_ordering_rejected_eagerly(self):
        wf = _tiny_workflow()
        with pytest.raises(ValueError):
            SimJob(wf, 2, "no-such-mode")
        with pytest.raises(KeyError):
            SimJob(wf, 2, ordering="no-such-ordering")


class TestSerialFallback:
    """A 1-core machine (or a small batch) must never pay for a pool."""

    def test_workers_capped_at_cpu_count(self, monkeypatch):
        monkeypatch.setattr(executor_module.os, "cpu_count", lambda: 2)
        assert executor_module.resolve_workers(8) == 2
        monkeypatch.setattr(executor_module.os, "cpu_count", lambda: 1)
        assert executor_module.resolve_workers(8) == 1
        monkeypatch.setenv("REPRO_SWEEP_WORKERS", "4")
        assert executor_module.resolve_workers() == 1

    def test_workers_still_validated(self):
        with pytest.raises(ValueError):
            executor_module.resolve_workers(0)

    def test_min_batch_default_and_env(self, monkeypatch):
        monkeypatch.delenv(executor_module.MIN_BATCH_ENV, raising=False)
        assert (
            executor_module.resolve_min_batch()
            == executor_module.MIN_PARALLEL_BATCH
        )
        monkeypatch.setenv(executor_module.MIN_BATCH_ENV, "2")
        assert executor_module.resolve_min_batch() == 2
        monkeypatch.setenv(executor_module.MIN_BATCH_ENV, "nope")
        with pytest.raises(ValueError):
            executor_module.resolve_min_batch()

    def test_small_batch_stays_serial(self, montage1, monkeypatch):
        monkeypatch.setattr(executor_module.os, "cpu_count", lambda: 8)
        executor = SweepExecutor(workers=4, cache=SimCache())
        assert executor.workers == 4
        executor.run([SimJob(montage1, p) for p in (1, 2, 3)])
        assert not executor.used_process_pool

    def test_single_worker_stays_serial(self, montage1):
        executor = SweepExecutor(workers=1, cache=SimCache())
        executor.run([SimJob(montage1, p) for p in (1, 2, 3, 4, 5)])
        assert not executor.used_process_pool

    @pytest.mark.slow
    def test_large_batch_uses_pool_and_matches_serial(
        self, montage1, monkeypatch
    ):
        monkeypatch.setattr(executor_module.os, "cpu_count", lambda: 8)
        jobs = [SimJob(montage1, p) for p in (1, 2, 4, 8)]
        serial = SweepExecutor(workers=1, cache=SimCache()).run(jobs)
        pooled_executor = SweepExecutor(workers=2, cache=SimCache())
        pooled = pooled_executor.run(jobs)
        assert pooled_executor.used_process_pool
        assert pooled == serial


class TestBatchGrouping:
    """Cache-missed jobs sharing a workflow ride one batched kernel call.

    The grouping is an execution detail: submission order, per-job
    fingerprints, cache contents and the results themselves must be
    byte-identical to independent ``job.run()`` calls.
    """

    def test_mixed_batch_matches_per_job_runs(self, montage1):
        wf2 = _tiny_workflow("second")
        jobs = [
            SimJob(montage1, 16, "cleanup"),
            SimJob(wf2, 2),  # different workflow → separate unit
            SimJob(montage1, 4, "regular", link_contention=True),
            SimJob(montage1, 2, kernel="event"),  # pinned → solo unit
            SimJob(montage1, 8, "remote-io", record_trace=True),
            SimJob(montage1, 1, failures=FailureSpec(0.05, seed=3)),
            SimJob(montage1, 4, "cleanup", storage_capacity_bytes=5e9),
        ]
        expected = [job.run() for job in jobs]
        got = SweepExecutor(workers=1, cache=SimCache()).run(jobs)
        assert got == expected

    def test_grouped_results_keep_submission_order(self, montage1):
        wf2 = _tiny_workflow("interleaved")
        jobs = [
            SimJob(montage1, 16),
            SimJob(wf2, 1),
            SimJob(montage1, 1),
            SimJob(wf2, 2),
            SimJob(montage1, 4),
        ]
        results = SweepExecutor(workers=1, cache=SimCache()).run(jobs)
        assert [(r.workflow_name, r.n_processors) for r in results] == [
            (j.workflow.name, j.n_processors) for j in jobs
        ]

    def test_batched_jobs_still_cached_per_fingerprint(self, montage1):
        cache = SimCache()
        jobs = [SimJob(montage1, p, "cleanup") for p in (1, 2, 4, 8)]
        executor = SweepExecutor(workers=1, cache=cache)
        first = executor.run(jobs)
        assert len(cache) == len(jobs)
        assert cache.misses == len(jobs)
        second = executor.run(jobs)
        assert cache.hits == len(jobs)
        assert second == first

    def test_report_byte_identical_with_and_without_grouping(
        self, montage1, isolated_default_cache, monkeypatch
    ):
        # Force every unit to be a singleton by pinning the event kernel
        # via the env var (resolved at job construction), and compare a
        # whole experiment report against the default batched path.
        batched = run_question1(montage1, processors=PROCESSORS)
        cache_module.reset_default_cache()
        monkeypatch.setenv("REPRO_SIM_KERNEL", "event")
        solo = run_question1(montage1, processors=PROCESSORS)
        assert batched.as_table() == solo.as_table()
        assert batched.as_csv() == solo.as_csv()

    def test_failure_jobs_join_fast_batches(self, montage1):
        # Since the Monte Carlo PR, failure-carrying jobs are batchable:
        # they resolve to the fast kernel under auto/fast and ride the
        # fingerprint-grouped batch calls, bit-identical to event runs.
        spec = FailureSpec(0.05, seed=3, max_retries=25)
        jobs = [
            SimJob(montage1, p, failures=spec, kernel=k)
            for p in (2, 8)
            for k in ("auto", "fast")
        ]
        from repro.sweep.executor import _batchable

        assert all(_batchable(job) for job in jobs)
        batched = SweepExecutor(workers=1, cache=SimCache()).run(jobs)
        event = [
            SimJob(montage1, p, failures=spec, kernel="event").run()
            for p in (2, 8)
            for _ in ("auto", "fast")
        ]
        assert batched == event

    def test_zero_probability_spec_normalizes_to_none(self):
        # FailureSpec(p=0) is behaviourally no failure model at all; the
        # job normalizes it away so both spellings share one cache key
        # and one byte-identical result.
        wf = _tiny_workflow()
        zero = SimJob(wf, 2, failures=FailureSpec(0.0, seed=9))
        none = SimJob(wf, 2)
        assert zero.failures is None
        assert zero.fingerprint() == none.fingerprint()
        assert zero == none
        assert zero.run() == none.run()

    def test_audited_jobs_not_grouped(self, montage1):
        # Audit pins the event engine per job; grouping must not change
        # that (audited_jobs counts individual executions).
        executor = SweepExecutor(workers=1, cache=SimCache(), audit=True)
        jobs = [SimJob(montage1, p) for p in (2, 4)]
        results = executor.run(jobs)
        assert executor.audited_jobs == 2
        assert [r.n_processors for r in results] == [2, 4]


class TestKernelDispatch:
    def test_sweep_default_kernel_matches_event(self, montage1):
        # auto-mode sweeps take the fast kernel for eligible jobs; the
        # results must be indistinguishable from event-engine sweeps.
        auto = SweepExecutor(workers=1, cache=SimCache()).run(
            [SimJob(montage1, p, "cleanup") for p in (2, 8)]
        )
        event = SweepExecutor(workers=1, cache=SimCache()).run(
            [SimJob(montage1, p, "cleanup", kernel="event") for p in (2, 8)]
        )
        assert auto == event

    def test_audited_sweep_pins_event_engine(self, montage1):
        # kernel="fast" jobs under audit are re-run on the event engine
        # (the oracle's subject), traced, and still reconcile.
        executor = SweepExecutor(workers=1, cache=SimCache(), audit=True)
        results = executor.run([SimJob(montage1, 4, kernel="fast")])
        assert executor.audited_jobs == 1
        reference = SimJob(
            montage1, 4, record_trace=True, kernel="event"
        ).run()
        assert results[0] == reference
