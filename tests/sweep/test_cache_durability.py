"""SimCache durability: concurrent writers, corrupt-pickle quarantine,
flat→sharded migration, the LRU memory bound, and stats reporting."""

from __future__ import annotations

import multiprocessing
import os
import pickle

import pytest

from repro.sim import simulate
from repro.sweep import SimJob
from repro.sweep.cache import (
    CACHE_MAX_ENV,
    SHARD_PREFIX,
    SimCache,
    resolve_max_memory_entries,
)


def tiny_result():
    from repro.workflow.dag import FileSpec, Task, Workflow

    wf = Workflow("cache-probe")
    wf.add_file(FileSpec("in", 1e6))
    wf.add_file(FileSpec("out", 1e6))
    wf.add_task(Task("t0", 1.0, inputs=("in",), outputs=("out",)))
    return simulate(wf, 1, "regular")


def job_fingerprint() -> str:
    from repro.montage.generator import montage_workflow

    return SimJob(montage_workflow(0.4), 2).fingerprint()


def _racing_writer(args) -> bool:
    directory, key, payload_path = args
    with open(payload_path, "rb") as fh:
        result = pickle.load(fh)
    cache = SimCache(directory)
    for _ in range(25):
        cache.put(key, result)
    return cache.get(key) is not None


class TestShardedLayout:
    def test_entries_live_in_prefix_shards(self, tmp_path):
        cache = SimCache(tmp_path)
        key = job_fingerprint()
        cache.put(key, tiny_result())
        expected = tmp_path / key[:SHARD_PREFIX] / f"{key}.pkl"
        assert expected.is_file()
        assert not (tmp_path / f"{key}.pkl").exists()

    def test_flat_layout_migrates_on_first_touch(self, tmp_path):
        result = tiny_result()
        keys = [f"{i:02x}{'ab' * 31}" for i in range(8)]
        # Write the pre-sharding layout by hand: flat {key}.pkl files.
        for key in keys:
            with open(tmp_path / f"{key}.pkl", "wb") as fh:
                pickle.dump(result, fh)
        cache = SimCache(tmp_path)
        for key in keys:
            got = cache.get(key)
            assert got is not None
            assert got.makespan == result.makespan
            assert not (tmp_path / f"{key}.pkl").exists()
            assert (
                tmp_path / key[:SHARD_PREFIX] / f"{key}.pkl"
            ).is_file()
        # Nothing lost: a fresh cache still answers every key from disk.
        fresh = SimCache(tmp_path)
        assert all(fresh.get(key) is not None for key in keys)

    def test_disk_entries_counts_flat_and_sharded(self, tmp_path):
        cache = SimCache(tmp_path)
        cache.put("ab" * 32, tiny_result())
        with open(tmp_path / f"{'cd' * 32}.pkl", "wb") as fh:
            pickle.dump(tiny_result(), fh)
        assert cache.disk_entries() == 2


class TestConcurrentWriters:
    def test_racing_puts_on_same_key(self, tmp_path):
        # Many processes hammering put() on one key must never leave a
        # torn file: every reader afterwards sees a complete pickle.
        key = "ee" * 32
        payload = tmp_path / "payload.pkl"
        with open(payload, "wb") as fh:
            pickle.dump(tiny_result(), fh)
        ctx = multiprocessing.get_context("spawn")
        with ctx.Pool(4) as pool:
            outcomes = pool.map(
                _racing_writer, [(str(tmp_path), key, str(payload))] * 4
            )
        assert all(outcomes)
        fresh = SimCache(tmp_path)
        assert fresh.get(key) is not None
        # No leftover temp files from the atomic-publish dance.
        assert not list(tmp_path.glob("**/*.tmp"))

    def test_concurrent_blob_writers(self, tmp_path):
        a, b = SimCache(tmp_path), SimCache(tmp_path)
        a.put_blob("ff" * 32, {"shard": 1})
        b.put_blob("ff" * 32, {"shard": 2})
        assert SimCache(tmp_path).get_blob("ff" * 32)["shard"] in (1, 2)


class TestCorruptEntries:
    def test_truncated_pickle_is_miss_and_quarantined(self, tmp_path):
        cache = SimCache(tmp_path)
        key = "aa" * 32
        cache.put(key, tiny_result())
        path = tmp_path / key[:SHARD_PREFIX] / f"{key}.pkl"
        path.write_bytes(path.read_bytes()[:10])

        fresh = SimCache(tmp_path)
        assert fresh.get(key) is None
        assert fresh.misses == 1
        # Quarantined: the corrupt bytes moved aside, not re-read.
        assert not path.exists()
        assert path.with_suffix(".corrupt").exists()
        # ...and a rewrite repairs the entry at the original path.
        fresh.put(key, tiny_result())
        assert SimCache(tmp_path).get(key) is not None

    def test_garbage_pickle_is_miss(self, tmp_path):
        cache = SimCache(tmp_path)
        key = "bb" * 32
        (tmp_path / key[:SHARD_PREFIX]).mkdir()
        (tmp_path / key[:SHARD_PREFIX] / f"{key}.pkl").write_bytes(
            b"\x80\x05garbage"
        )
        assert cache.get(key) is None

    def test_corrupt_blob_quarantined(self, tmp_path):
        cache = SimCache(tmp_path)
        key = "cc" * 32
        cache.put_blob(key, [1, 2, 3])
        blob = tmp_path / key[:SHARD_PREFIX] / f"{key}.blob.pkl"
        blob.write_bytes(b"junk")
        assert cache.get_blob(key) is None
        assert not blob.exists()


class TestMemoryBound:
    def test_lru_eviction(self):
        cache = SimCache(max_memory_entries=2)
        r = tiny_result()
        cache.put("k1", r)
        cache.put("k2", r)
        cache.put("k3", r)
        assert len(cache) == 2
        assert cache.evictions == 1
        assert cache.get("k1") is None  # evicted (oldest)
        assert cache.get("k3") is not None

    def test_get_refreshes_recency(self):
        cache = SimCache(max_memory_entries=2)
        r = tiny_result()
        cache.put("k1", r)
        cache.put("k2", r)
        assert cache.get("k1") is not None  # k1 now most recent
        cache.put("k3", r)
        assert cache.get("k2") is None  # k2 was the LRU victim
        assert cache.get("k1") is not None

    def test_eviction_keeps_disk_copy(self, tmp_path):
        cache = SimCache(tmp_path, max_memory_entries=1)
        r = tiny_result()
        cache.put("k1" * 32, r)
        cache.put("k2" * 32, r)
        assert len(cache) == 1
        assert cache.get("k1" * 32) is not None  # reloaded from disk

    def test_env_bound(self, monkeypatch):
        monkeypatch.setenv(CACHE_MAX_ENV, "7")
        assert resolve_max_memory_entries() == 7
        monkeypatch.setenv(CACHE_MAX_ENV, "0")
        assert resolve_max_memory_entries() is None
        monkeypatch.setenv(CACHE_MAX_ENV, "nope")
        with pytest.raises(ValueError, match=CACHE_MAX_ENV):
            resolve_max_memory_entries()
        monkeypatch.delenv(CACHE_MAX_ENV)
        assert resolve_max_memory_entries() is None
        with pytest.raises(ValueError, match="max_memory_entries"):
            SimCache(max_memory_entries=0)


class TestStats:
    def test_stats_snapshot(self, tmp_path):
        cache = SimCache(tmp_path, max_memory_entries=1)
        r = tiny_result()
        cache.put("aa" * 32, r)
        cache.put("ab" * 32, r)
        cache.get("aa" * 32)
        cache.get("zz" * 32)
        stats = cache.stats()
        assert stats["hits"] == 1
        assert stats["misses"] == 1
        # put ab evicted aa; get aa reloaded it from disk, evicting ab.
        assert stats["evictions"] == 2
        assert stats["memory_entries"] == 1
        assert stats["max_memory_entries"] == 1
        assert stats["disk_entries"] == 2
        assert stats["hit_rate"] == 0.5

    def test_clear_resets_counters_keeps_disk(self, tmp_path):
        cache = SimCache(tmp_path)
        cache.put("aa" * 32, tiny_result())
        cache.get("aa" * 32)
        cache.clear()
        assert cache.stats()["hits"] == 0
        assert cache.stats()["disk_entries"] == 1
        assert cache.get("aa" * 32) is not None  # from disk

    def test_sweep_verbose_prints_stats(self, capsys):
        from repro.cli import main

        assert (
            main(["sweep", "--degree", "0.4", "--processors", "1,2",
                  "--verbose"])
            == 0
        )
        assert "cache:" in capsys.readouterr().out


def test_os_replace_is_atomic_publish(tmp_path):
    # Guard the mechanism the concurrency story rests on: os.replace
    # within a directory never exposes a missing or partial target.
    target = tmp_path / "x.pkl"
    for i in range(5):
        tmp = tmp_path / f"t{i}"
        tmp.write_bytes(pickle.dumps(i, protocol=pickle.HIGHEST_PROTOCOL))
        os.replace(tmp, target)
        assert pickle.loads(target.read_bytes()) == i
