"""Every example script must run cleanly and print its key findings."""

import runpy
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).parent.parent / "examples"

#: script -> substrings its output must contain
EXPECTED = {
    "quickstart.py": ["montage-1deg", "TOTAL", "CPU utilization"],
    "sporadic_overload.py": ["Pareto-efficient", "Deadline user", "Budget user"],
    "service_provider.py": ["Best strategy", "break-even"],
    "whole_sky.py": ["Store-vs-recompute", "3900"],
    "custom_workflow.py": ["figure3-custom", "storage-heavy"],
    "mosaic_service.py": ["Smallest pool", "Best policy"],
    "figure2_portal.py": ["hit rate", "Fulfillment log"],
}


@pytest.mark.parametrize("script", sorted(EXPECTED))
def test_example_runs(script, capsys):
    runpy.run_path(str(EXAMPLES / script), run_name="__main__")
    out = capsys.readouterr().out
    for marker in EXPECTED[script]:
        assert marker in out, f"{script} output missing {marker!r}"


def test_every_example_is_covered():
    on_disk = {p.name for p in EXAMPLES.glob("*.py")}
    assert on_disk == set(EXPECTED)
