"""Golden-trace regression: the canonical 1° Montage event log is pinned.

The paper-scoreboard tests compare aggregates within tolerances, so an
engine refactor that reorders events or shifts timestamps can drift
underneath them unnoticed.  These tests diff the *entire* task and
transfer record streams of the canonical run (Montage 1°, 8 processors,
Regular mode) against CSVs committed under ``tests/data/``.

If a deliberate engine change breaks them, regenerate the fixtures with::

    PYTHONPATH=src python - <<'EOF'
    from repro.montage import montage_1_degree
    from repro.sim.executor import simulate
    from repro.sim.trace import task_records_csv, transfer_records_csv
    r = simulate(montage_1_degree(), 8, "regular")
    open("tests/data/montage1_regular_p8_tasks.csv", "w").write(
        task_records_csv(r))
    open("tests/data/montage1_regular_p8_transfers.csv", "w").write(
        transfer_records_csv(r))
    EOF

and say so in the commit message — a golden-trace change is an
intentional behaviour change, never a side effect.
"""

import difflib
from pathlib import Path

import pytest

from repro.sim.executor import simulate
from repro.sim.trace import task_records_csv, transfer_records_csv

DATA = Path(__file__).parent / "data"


@pytest.fixture(scope="module")
def canonical_result(montage1):
    return simulate(montage1, 8, "regular")


def _assert_identical(fresh: str, golden_path: Path) -> None:
    # csv emits \r\n; normalize both sides so the comparison is about
    # events and timestamps, not platform line endings.
    fresh = fresh.replace("\r\n", "\n")
    golden = golden_path.read_text(encoding="utf-8").replace("\r\n", "\n")
    if fresh != golden:
        diff = "\n".join(
            difflib.unified_diff(
                golden.splitlines(),
                fresh.splitlines(),
                fromfile=str(golden_path.name),
                tofile="fresh simulation",
                lineterm="",
                n=1,
            )
        )
        pytest.fail(
            f"simulated trace drifted from the golden fixture "
            f"{golden_path.name}:\n{diff[:4000]}"
        )


def test_task_records_match_golden(canonical_result):
    _assert_identical(
        task_records_csv(canonical_result),
        DATA / "montage1_regular_p8_tasks.csv",
    )


def test_transfer_records_match_golden(canonical_result):
    _assert_identical(
        transfer_records_csv(canonical_result),
        DATA / "montage1_regular_p8_transfers.csv",
    )


def test_golden_trace_covers_every_task(montage1, canonical_result):
    task_ids = {r.task_id for r in canonical_result.task_records}
    assert task_ids == set(montage1.tasks)
