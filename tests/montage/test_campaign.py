"""Whole-sky campaign planner tests."""

import pytest

from repro.montage.campaign import plan_whole_sky_campaign
from repro.util.units import MONTH


class TestCampaign:
    @pytest.fixture(scope="class")
    def single_pool(self):
        return plan_whole_sky_campaign(4.0, processors_per_pool=16)

    def test_plate_count_and_cost(self, single_pool):
        assert single_pool.n_plates == 3900
        # Per-plate on-demand cost ~= the paper's $8.88 figure-10 total.
        assert single_pool.plate_cost == pytest.approx(9.06, abs=0.05)
        assert single_pool.compute_cost == pytest.approx(
            3900 * single_pool.plate_cost
        )

    def test_duration_arithmetic(self, single_pool):
        assert single_pool.duration_seconds == pytest.approx(
            3900 * single_pool.plate_makespan
        )
        # A 16-processor pool takes years for the whole sky (~5.9 h/plate).
        assert 25 < single_pool.duration_months < 40

    def test_more_pools_divide_duration(self, single_pool):
        sixteen = plan_whole_sky_campaign(
            4.0, processors_per_pool=16, n_pools=16
        )
        assert sixteen.duration_seconds == pytest.approx(
            single_pool.duration_seconds / 16, rel=0.01
        )
        # Same compute bill: the pools are busy either way.
        assert sixteen.compute_cost == pytest.approx(
            single_pool.compute_cost
        )

    def test_prestaging_economics(self):
        staged = plan_whole_sky_campaign(4.0, 16, n_pools=16)
        prestaged = plan_whole_sky_campaign(
            4.0, 16, n_pools=16, prestage_inputs=True
        )
        # Pre-staging drops ~$0.30 of ingress per plate (~$1,150 total)
        # but pays the $1,200 upload and the campaign's archive rent.
        assert prestaged.plate_cost < staged.plate_cost
        assert prestaged.archive_upload_cost == pytest.approx(1200.0)
        expected_rent = 1800.0 * prestaged.duration_months
        assert prestaged.archive_storage_cost == pytest.approx(expected_rent)
        assert staged.archive_upload_cost == 0.0
        assert staged.archive_storage_cost == 0.0

    def test_prestaging_never_pays_for_a_one_shot_campaign(self):
        """Each plate reads its inputs exactly once, so hosting the
        archive saves only one traversal (~$1,150) while costing the
        $1,200 upload plus duration-scaled rent — pre-staging loses even
        for the fastest campaign, and loses catastrophically for slow
        ones.  Hosting pays only with *sustained* request traffic, which
        is precisely the paper's Question-2b break-even logic
        (18,000 mosaics per month)."""
        slow_staged = plan_whole_sky_campaign(4.0, 16, n_pools=1)
        slow_pre = plan_whole_sky_campaign(
            4.0, 16, n_pools=1, prestage_inputs=True
        )
        fast_staged = plan_whole_sky_campaign(4.0, 16, n_pools=16)
        fast_pre = plan_whole_sky_campaign(
            4.0, 16, n_pools=16, prestage_inputs=True
        )
        assert slow_pre.total_cost > slow_staged.total_cost
        assert fast_pre.total_cost > fast_staged.total_cost
        # ...but the penalty shrinks as the campaign speeds up.
        assert (fast_pre.total_cost - fast_staged.total_cost) < (
            slow_pre.total_cost - slow_staged.total_cost
        )

    def test_six_degree_campaign(self):
        plan = plan_whole_sky_campaign(6.0, 16)
        assert plan.n_plates == 1734
        assert plan.total_cost > 0

    def test_validation(self):
        with pytest.raises(ValueError):
            plan_whole_sky_campaign(4.0, 16, n_pools=0)
