"""Sky-geometry tests."""

import math

import pytest

from repro.montage.sky import (
    REGION_CATALOG,
    SKY_AREA_SQ_DEG,
    PlateCenter,
    margin_for_plate_count,
    region,
    sky_plate_centers,
)


class TestPlateLayout:
    def test_zero_margin_count_near_sky_area(self):
        # Without overlap the plate count tracks area / d^2 (plus the
        # band-quantization excess).
        for d in (2.0, 4.0, 6.0):
            n = len(sky_plate_centers(d))
            ideal = SKY_AREA_SQ_DEG / d**2
            assert ideal <= n <= 1.15 * ideal

    def test_margin_recovers_paper_plate_counts(self):
        """The paper's 3,900 4° / 1,734 6° full-sky sets correspond to a
        consistent ~18% linear overlap in a declination-band layout."""
        m4 = margin_for_plate_count(4.0, 3900)
        assert len(sky_plate_centers(4.0, m4)) == 3900
        m6 = margin_for_plate_count(6.0, 1734)
        assert len(sky_plate_centers(6.0, m6)) == 1734
        assert m4 / 4.0 == pytest.approx(m6 / 6.0, abs=0.02)

    def test_more_overlap_more_plates(self):
        counts = [
            len(sky_plate_centers(4.0, m)) for m in (0.0, 0.3, 0.6, 0.9)
        ]
        assert counts == sorted(counts)

    def test_centers_valid_and_unique(self):
        centers = sky_plate_centers(6.0, 0.5)
        assert len({(c.ra_deg, c.dec_deg) for c in centers}) == len(centers)
        for c in centers:
            assert 0.0 <= c.ra_deg < 360.0
            assert -90.0 + 3.0 <= c.dec_deg <= 90.0 - 3.0  # footprint on sky

    def test_dec_coverage_no_gaps(self):
        """Consecutive bands (plus plate height) leave no Dec gap."""
        degree, margin = 4.0, 0.5
        centers = sky_plate_centers(degree, margin)
        decs = sorted({c.dec_deg for c in centers})
        assert decs[0] - degree / 2 <= -90.0 + 1e-9
        assert decs[-1] + degree / 2 >= 90.0 - 1e-9
        for a, b in zip(decs, decs[1:]):
            assert b - a <= degree - margin + 1e-9

    def test_ra_coverage_within_band(self):
        """Plates within a band cover the full RA circle with overlap."""
        degree, margin = 4.0, 0.5
        centers = sky_plate_centers(degree, margin)
        by_dec = {}
        for c in centers:
            by_dec.setdefault(c.dec_deg, []).append(c.ra_deg)
        for dec, ras in by_dec.items():
            ras = sorted(ras)
            width = degree / math.cos(math.radians(dec))  # RA extent
            gaps = [b - a for a, b in zip(ras, ras[1:])]
            gaps.append(ras[0] + 360.0 - ras[-1])
            assert max(gaps) <= width + 1e-9

    def test_validation(self):
        with pytest.raises(ValueError):
            sky_plate_centers(0.0)
        with pytest.raises(ValueError):
            sky_plate_centers(4.0, 4.0)
        with pytest.raises(ValueError):
            sky_plate_centers(4.0, -0.1)
        with pytest.raises(ValueError):
            PlateCenter(360.0, 0.0)
        with pytest.raises(ValueError):
            PlateCenter(0.0, 91.0)

    def test_margin_solver_rejects_impossible_targets(self):
        with pytest.raises(ValueError, match="below the zero-overlap"):
            margin_for_plate_count(4.0, 100)
        with pytest.raises(ValueError):
            margin_for_plate_count(4.0, 0)
        with pytest.raises(ValueError, match="sane margins"):
            margin_for_plate_count(4.0, 10_000_000)


class TestRegions:
    def test_m17_is_the_papers_test_region(self):
        m17 = region("M17")
        assert m17.dec_deg == pytest.approx(-16.17, abs=0.01)
        assert "paper" in m17.description

    def test_lookup_case_insensitive(self):
        assert region("orion").name == "Orion"
        assert region("ORION") is region("Orion")

    def test_unknown_region(self):
        with pytest.raises(KeyError, match="catalog has"):
            region("Narnia")

    def test_catalog_positions_valid(self):
        for r in REGION_CATALOG.values():
            assert 0.0 <= r.ra_deg < 360.0
            assert -90.0 <= r.dec_deg <= 90.0
