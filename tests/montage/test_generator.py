"""Montage workflow generator tests."""

import pytest

from repro.montage.generator import montage_workflow
from repro.montage.profiles import profile_for_degree
from repro.workflow.analysis import (
    communication_to_computation_ratio,
    critical_path,
    level_widths,
)


class TestStructure:
    def test_task_counts(self, montage1, montage2, montage4):
        assert len(montage1) == 203
        assert len(montage2) == 731
        assert len(montage4) == 3027

    def test_transformation_counts(self, montage1):
        counts = montage1.count_by_transformation()
        assert counts["mProject"] == 40
        assert counts["mDiffFit"] == 118
        assert counts["mBackground"] == 40
        for single in ("mConcatFit", "mBgModel", "mImgtbl", "mAdd", "mShrink"):
            assert counts[single] == 1

    def test_depth_is_eight_levels(self, montage1):
        assert montage1.depth() == 8

    def test_level_structure(self, montage1):
        widths = level_widths(montage1)
        # mProject / mDiffFit / mConcatFit / mBgModel / mBackground /
        # mImgtbl / mAdd / mShrink
        assert widths == {1: 40, 2: 118, 3: 1, 4: 1, 5: 40, 6: 1, 7: 1, 8: 1}

    def test_same_level_same_transformation(self, montage1):
        """The paper: all tasks at a level invoke the same routine."""
        levels = montage1.levels()
        by_level = {}
        for tid, task in montage1.tasks.items():
            by_level.setdefault(levels[tid], set()).add(task.transformation)
        assert all(len(kinds) == 1 for kinds in by_level.values())

    def test_diff_fit_reads_two_projected_images(self, montage1):
        task = montage1.task("mDiffFit_00000")
        assert len(task.inputs) == 2
        assert all(name.startswith("proj_") for name in task.inputs)

    def test_every_mproject_reads_the_template(self, montage1):
        for i in range(40):
            assert "template.hdr" in montage1.task(f"mProject_{i:04d}").inputs

    def test_madd_reads_all_corrected_images(self, montage1):
        task = montage1.task("mAdd")
        # images.tbl + 40 corrected + 40 area files
        assert len(task.inputs) == 81

    def test_outputs_are_mosaic_and_preview(self, montage1):
        assert sorted(montage1.output_files()) == [
            "mosaic.fits",
            "mosaic_small.fits",
        ]

    def test_inputs_are_rawimages_and_template(self, montage1):
        inputs = montage1.input_files()
        assert "template.hdr" in inputs
        assert sum(1 for f in inputs if f.startswith("raw_")) == 40
        assert len(inputs) == 41


class TestCalibration:
    @pytest.mark.parametrize("degree,ccr", [(1.0, 0.053), (2.0, 0.053), (4.0, 0.045)])
    def test_workflow_ccr_matches_paper(self, degree, ccr, request):
        wf = request.getfixturevalue(f"montage{int(degree)}")
        assert communication_to_computation_ratio(wf) == pytest.approx(
            ccr, rel=1e-9
        )

    def test_total_runtime_matches_profile(self, montage1):
        prof = profile_for_degree(1.0)
        assert montage1.total_runtime() == pytest.approx(prof.total_runtime())

    def test_footprint_matches_profile_closed_form(self, montage1):
        prof = profile_for_degree(1.0)
        assert montage1.total_file_bytes() == pytest.approx(
            prof.footprint_bytes()
        )

    def test_critical_path_spans_all_levels(self, montage1):
        length, path = critical_path(montage1)
        kinds = [montage1.task(t).transformation for t in path]
        assert kinds == [
            "mProject",
            "mDiffFit",
            "mConcatFit",
            "mBgModel",
            "mBackground",
            "mImgtbl",
            "mAdd",
            "mShrink",
        ]
        assert length == pytest.approx(montage1.task(path[0]).runtime * 0 + sum(
            montage1.task(t).runtime for t in path
        ))


class TestJitter:
    def test_zero_jitter_is_uniform_per_type(self, montage1):
        runtimes = {
            t.runtime for t in montage1.tasks.values()
            if t.transformation == "mProject"
        }
        assert len(runtimes) == 1

    def test_jitter_preserves_total_runtime(self):
        base = montage_workflow(1.0)
        jittered = montage_workflow(1.0, jitter=0.3, seed=42)
        assert jittered.total_runtime() == pytest.approx(
            base.total_runtime(), rel=1e-12
        )

    def test_jitter_varies_individual_tasks(self):
        jittered = montage_workflow(1.0, jitter=0.3, seed=42)
        runtimes = {
            t.runtime for t in jittered.tasks.values()
            if t.transformation == "mProject"
        }
        assert len(runtimes) > 1

    def test_jitter_deterministic_in_seed(self):
        a = montage_workflow(1.0, jitter=0.3, seed=1)
        b = montage_workflow(1.0, jitter=0.3, seed=1)
        for tid in a.tasks:
            assert a.task(tid).runtime == b.task(tid).runtime

    def test_negative_jitter_rejected(self):
        with pytest.raises(ValueError):
            montage_workflow(1.0, jitter=-0.1)


class TestCustomProfiles:
    def test_profile_override(self):
        prof = profile_for_degree(1.0)
        wf = montage_workflow(profile=prof, name="custom")
        assert wf.name == "custom"
        assert len(wf) == 203

    def test_non_canonical_degree_is_valid(self):
        wf = montage_workflow(0.5)
        wf.validate()
        prof = profile_for_degree(0.5)
        assert len(wf) == prof.n_tasks
        assert communication_to_computation_ratio(wf) == pytest.approx(
            prof.ccr_target, rel=1e-9
        )
