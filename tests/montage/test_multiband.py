"""Multi-band (color mosaic) workflow tests."""

import pytest

from repro.core.pricing import AWS_2008
from repro.montage.multiband import multiband_montage_workflow
from repro.sim.executor import simulate
from repro.workflow.analysis import max_parallelism


class TestStructure:
    @pytest.fixture(scope="class")
    def color1(self):
        return multiband_montage_workflow(1.0)

    def test_task_count(self, color1):
        assert len(color1) == 3 * 203 + 1

    def test_band_namespaces(self, color1):
        for band in ("j", "h", "k"):
            assert f"{band}_mAdd" in color1
            assert f"{band}_mosaic.fits" in color1.files

    def test_combine_consumes_all_band_mosaics(self, color1):
        combine = color1.task("mColorJPEG")
        assert set(combine.inputs) == {
            "j_mosaic.fits", "h_mosaic.fits", "k_mosaic.fits",
        }

    def test_outputs(self, color1):
        outs = set(color1.output_files())
        assert "color.jpg" in outs
        # Band mosaics remain deliverables (marked per band).
        assert "j_mosaic.fits" in outs
        assert "k_mosaic_small.fits" in outs

    def test_depth_unchanged(self, color1, montage1):
        # mColorJPEG consumes the band mosaics (level 7 products), so it
        # sits at level 8 alongside each band's mShrink.
        assert color1.depth() == montage1.depth()
        assert color1.levels()["mColorJPEG"] == 8

    def test_bands_are_independent_waves(self, color1):
        # The three bands triple the available parallelism.
        assert max_parallelism(color1) == 3 * 118


class TestCalibration:
    def test_cpu_cost_three_times_single_band(self, montage1):
        color = multiband_montage_workflow(1.0)
        single_cpu = AWS_2008.cpu_cost(montage1.total_runtime())
        color_cpu = AWS_2008.cpu_cost(color.total_runtime())
        assert color_cpu == pytest.approx(3 * single_cpu, rel=0.01)

    def test_footprint_three_times_single_band(self, montage1):
        color = multiband_montage_workflow(1.0)
        assert color.total_file_bytes() == pytest.approx(
            3 * montage1.total_file_bytes(), rel=0.001
        )


class TestExecution:
    def test_simulates_end_to_end(self):
        color = multiband_montage_workflow(1.0)
        r = simulate(color, 64, "cleanup", record_trace=False)
        assert r.n_task_executions == 610
        assert r.makespan > 0

    def test_custom_bands(self):
        two = multiband_montage_workflow(1.0, bands=("r", "b"))
        assert len(two) == 2 * 203 + 1
        assert "mColorJPEG" in two

    def test_jitter_seeds_differ_per_band(self):
        color = multiband_montage_workflow(1.0, jitter=0.2, seed=5)
        j = color.task("j_mProject_0000").runtime
        h = color.task("h_mProject_0000").runtime
        assert j != h  # per-band seeds decorrelate the waves

    def test_validation(self):
        with pytest.raises(ValueError):
            multiband_montage_workflow(1.0, bands=())
        with pytest.raises(ValueError):
            multiband_montage_workflow(1.0, bands=("j", "j"))
