"""Tile-grid geometry tests."""

import pytest

from repro.montage.tiles import TileGrid, build_tile_grid


def _is_connected(grid: TileGrid) -> bool:
    if grid.n_images <= 1:
        return True
    adj = {i: set() for i in range(grid.n_images)}
    for a, b in grid.overlaps:
        adj[a].add(b)
        adj[b].add(a)
    seen = {0}
    stack = [0]
    while stack:
        for nxt in adj[stack.pop()]:
            if nxt not in seen:
                seen.add(nxt)
                stack.append(nxt)
    return len(seen) == grid.n_images


class TestNaturalGrid:
    def test_single_image(self):
        grid = build_tile_grid(1)
        assert grid.n_images == 1
        assert grid.n_overlaps == 0

    def test_2x2_grid(self):
        grid = build_tile_grid(4, n_cols=2)
        # 2 horizontal + 2 vertical + 2 diagonal pairs
        assert grid.n_overlaps == 6
        assert _is_connected(grid)

    def test_pairs_are_ordered_and_unique(self):
        grid = build_tile_grid(25)
        assert all(a < b for a, b in grid.overlaps)
        assert len(set(grid.overlaps)) == grid.n_overlaps

    def test_position(self):
        grid = build_tile_grid(10, n_cols=3)
        assert grid.position(0) == (0, 0)
        assert grid.position(4) == (1, 1)
        with pytest.raises(IndexError):
            grid.position(10)

    def test_pairs_are_neighbours(self):
        grid = build_tile_grid(30)
        for a, b in grid.overlaps:
            ra, ca = grid.position(a)
            rb, cb = grid.position(b)
            assert abs(ra - rb) <= 1 and abs(ca - cb) <= 1


class TestExactOverlapCounts:
    @pytest.mark.parametrize(
        "n_images,n_overlaps",
        [(40, 118), (145, 436), (604, 1814)],  # the paper's three sizes
    )
    def test_paper_sizes_exact(self, n_images, n_overlaps):
        grid = build_tile_grid(n_images, n_overlaps)
        assert grid.n_images == n_images
        assert grid.n_overlaps == n_overlaps
        assert _is_connected(grid)

    def test_truncation_keeps_connectivity(self):
        natural = build_tile_grid(36).n_overlaps
        # Ask for notably fewer pairs than natural.
        target = natural - 20
        grid = build_tile_grid(36, target)
        assert grid.n_overlaps == target
        assert _is_connected(grid)

    def test_extension_pairs_used_when_needed(self):
        natural = build_tile_grid(36).n_overlaps
        grid = build_tile_grid(36, natural + 10)
        assert grid.n_overlaps == natural + 10
        assert _is_connected(grid)

    def test_too_few_overlaps_rejected(self):
        with pytest.raises(ValueError, match="connected"):
            build_tile_grid(10, 5)

    def test_too_many_overlaps_rejected(self):
        with pytest.raises(ValueError, match="cannot realize"):
            build_tile_grid(4, 1000)

    def test_single_image_rejects_overlaps(self):
        with pytest.raises(ValueError):
            build_tile_grid(1, 3)

    def test_zero_images_rejected(self):
        with pytest.raises(ValueError):
            build_tile_grid(0)
