"""Calibration-profile tests: the published aggregates must pin exactly."""

import pytest

from repro.core.pricing import AWS_2008
from repro.montage.profiles import (
    CANONICAL_DEGREES,
    MontageProfile,
    RUNTIME_UNIT,
    TASK_WEIGHTS,
    profile_for_degree,
)
from repro.util.units import MB


class TestCanonicalProfiles:
    @pytest.mark.parametrize(
        "degree,n_tasks", [(1.0, 203), (2.0, 731), (4.0, 3027)]
    )
    def test_task_counts_match_paper(self, degree, n_tasks):
        assert profile_for_degree(degree).n_tasks == n_tasks

    @pytest.mark.parametrize(
        "degree,cpu_cost", [(1.0, 0.56), (2.0, 2.03), (4.0, 8.40)]
    )
    def test_cpu_cost_matches_paper(self, degree, cpu_cost):
        prof = profile_for_degree(degree)
        ours = AWS_2008.cpu_cost(prof.total_runtime())
        assert ours == pytest.approx(cpu_cost, abs=0.01)

    @pytest.mark.parametrize(
        "degree,mosaic_mb", [(1.0, 173.46), (2.0, 557.9), (4.0, 2229.0)]
    )
    def test_mosaic_sizes_match_paper(self, degree, mosaic_mb):
        prof = profile_for_degree(degree)
        assert prof.mosaic_bytes == pytest.approx(mosaic_mb * MB)

    @pytest.mark.parametrize("degree,ccr", [(1.0, 0.053), (2.0, 0.053), (4.0, 0.045)])
    def test_closed_form_footprint_hits_ccr(self, degree, ccr):
        prof = profile_for_degree(degree)
        bandwidth = 1.25e6  # 10 Mbps
        implied_ccr = prof.footprint_bytes() / (
            bandwidth * prof.total_runtime()
        )
        assert implied_ccr == pytest.approx(ccr, rel=1e-9)

    def test_4deg_wave_width_near_paper_parallelism(self):
        # paper: "maximum parallelism of that workflow is 610"
        assert profile_for_degree(4.0).n_images == 604

    def test_image_sizes_plausible(self):
        # Calibrated survey-image sizes should be a few MB (2MASS-like).
        for degree in CANONICAL_DEGREES:
            img = profile_for_degree(degree).image_bytes
            assert 2 * MB < img < 10 * MB


class TestProfileMechanics:
    def test_runtime_lookup(self):
        prof = profile_for_degree(1.0)
        assert prof.runtime("mProject") == pytest.approx(1.3 * RUNTIME_UNIT)
        with pytest.raises(KeyError, match="mUnknown"):
            prof.runtime("mUnknown")

    def test_total_runtime_closed_form(self):
        prof = profile_for_degree(1.0)
        n, m = prof.n_images, prof.n_overlaps
        w = TASK_WEIGHTS
        expected = (
            n * w["mProject"]
            + m * w["mDiffFit"]
            + n * w["mBackground"]
            + w["mConcatFit"]
            + w["mBgModel"]
            + w["mImgtbl"]
            + w["mAdd"]
            + w["mShrink"]
        ) * RUNTIME_UNIT
        assert prof.total_runtime() == pytest.approx(expected)

    def test_rejects_nonpositive_degree(self):
        with pytest.raises(ValueError):
            profile_for_degree(0.0)
        with pytest.raises(ValueError):
            profile_for_degree(-1.0)


class TestInterpolatedProfiles:
    def test_non_canonical_degree_builds(self):
        prof = profile_for_degree(3.0)
        assert prof.n_images > profile_for_degree(2.0).n_images
        assert prof.n_overlaps > 0
        assert prof.image_bytes > 0

    def test_ccr_interpolation(self):
        assert profile_for_degree(0.5).ccr_target == pytest.approx(0.053)
        assert profile_for_degree(3.0).ccr_target == pytest.approx(0.049)
        assert profile_for_degree(6.0).ccr_target == pytest.approx(0.045)

    def test_mosaic_power_law_monotone(self):
        sizes = [
            profile_for_degree(d).mosaic_bytes for d in (0.5, 1.5, 3.0, 6.0)
        ]
        assert sizes == sorted(sizes)

    def test_tiny_degree_still_valid(self):
        prof = profile_for_degree(0.25)
        assert prof.n_images >= 1
        assert prof.image_bytes > 0
