"""2MASS archive model tests."""

import pytest

from repro.core.pricing import AWS_2008
from repro.montage.twomass import TWO_MASS, TwoMassArchive
from repro.util.units import TB


class TestArchive:
    def test_paper_constants(self):
        assert TWO_MASS.size_bytes == 12 * TB
        assert TWO_MASS.n_bands == 3

    def test_plate_counts_match_paper(self):
        # "about 3,900 4-degree-square mosaics or about 1,734
        #  6-degrees-square mosaics"
        assert TWO_MASS.plates_for_full_sky(4.0) == 3900
        assert TWO_MASS.plates_for_full_sky(6.0) == 1734

    def test_monthly_storage_cost_is_1800(self):
        # "12,000 x $0.15 = $1,800 per month"
        assert AWS_2008.monthly_storage_cost(
            TWO_MASS.size_bytes
        ) == pytest.approx(1800.0)

    def test_initial_upload_cost_is_1200(self):
        # "an additional $1,200 at $0.1 per GB"
        assert AWS_2008.transfer_in_cost(TWO_MASS.size_bytes) == pytest.approx(
            1200.0
        )

    def test_smaller_plates_mean_more_of_them(self):
        assert TWO_MASS.plates_for_full_sky(1.0) > TWO_MASS.plates_for_full_sky(
            4.0
        )

    def test_invalid_degree(self):
        with pytest.raises(ValueError):
            TWO_MASS.plates_for_full_sky(0.0)

    def test_custom_archive(self):
        small = TwoMassArchive(name="toy", size_bytes=1 * TB)
        assert small.plates_for_full_sky(4.0) == 3900  # coverage unchanged
        assert AWS_2008.monthly_storage_cost(small.size_bytes) == pytest.approx(
            150.0
        )
