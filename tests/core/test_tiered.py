"""Tiered fee-schedule tests."""

import pytest
from hypothesis import given, strategies as st

from repro.core.costs import compute_cost
from repro.core.plans import ExecutionPlan
from repro.core.pricing import AWS_2008
from repro.core.tiered import (
    AWS_2008_TIERED_EGRESS,
    TieredPricingModel,
    TieredRate,
)
from repro.sim.executor import simulate
from repro.util.units import GB, HOUR, MONTH, TB


class TestTieredRate:
    def test_bracket_arithmetic(self):
        rate = TieredRate([(10.0, 0.18), (40.0, 0.16)], 0.13)
        assert rate.cost(0.0) == 0.0
        assert rate.cost(5.0) == pytest.approx(0.90)
        assert rate.cost(10.0) == pytest.approx(1.80)
        assert rate.cost(50.0) == pytest.approx(1.80 + 6.40)
        assert rate.cost(100.0) == pytest.approx(1.80 + 6.40 + 6.50)

    def test_marginal_price(self):
        rate = TieredRate([(10.0, 0.18), (40.0, 0.16)], 0.13)
        assert rate.marginal_price(0.0) == 0.18
        assert rate.marginal_price(9.999) == 0.18
        assert rate.marginal_price(10.0) == 0.16
        assert rate.marginal_price(50.0) == 0.13

    def test_flat_schedule(self):
        rate = TieredRate.flat(0.10)
        assert rate.cost(123.0) == pytest.approx(12.3)
        assert rate.marginal_price(1e9) == 0.10

    def test_validation(self):
        with pytest.raises(ValueError):
            TieredRate([(0.0, 0.1)], 0.1)
        with pytest.raises(ValueError):
            TieredRate([(1.0, -0.1)], 0.1)
        with pytest.raises(ValueError):
            TieredRate([], -0.1)
        with pytest.raises(ValueError):
            TieredRate([], 0.1).cost(-1.0)

    @given(
        q=st.floats(0.0, 1e6, allow_subnormal=False),
        q2=st.floats(0.0, 1e6, allow_subnormal=False),
    )
    def test_monotone_and_concave_marginals(self, q, q2):
        rate = TieredRate([(10.0, 0.18), (40.0, 0.16)], 0.13)
        lo, hi = sorted((q, q2))
        assert rate.cost(hi) >= rate.cost(lo) - 1e-12
        # Declining marginal prices: average unit price never increases
        # (relative tolerance absorbs division rounding at tiny volumes).
        if lo > 1e-9 and hi > 1e-9:
            assert rate.cost(hi) / hi <= (rate.cost(lo) / lo) * (1 + 1e-9)


class TestTieredPricingModel:
    def test_untouched_components_fall_through(self):
        model = AWS_2008_TIERED_EGRESS
        assert model.transfer_in_cost(GB) == AWS_2008.transfer_in_cost(GB)
        assert model.storage_cost(GB * MONTH) == AWS_2008.storage_cost(
            GB * MONTH
        )
        assert model.cpu_cost(HOUR) == AWS_2008.cpu_cost(HOUR)
        assert model.monthly_storage_cost(TB) == pytest.approx(150.0)

    def test_tiered_egress_first_bracket(self):
        # Small volumes pay the 2008 first-bracket $0.18/GB, above the
        # paper's flat $0.16.
        assert AWS_2008_TIERED_EGRESS.transfer_out_cost(GB) == pytest.approx(
            0.18
        )

    def test_tiered_egress_bulk_discount(self):
        # 100 TB mostly rides the $0.13 bracket.
        bulk = AWS_2008_TIERED_EGRESS.transfer_out_cost(100_000 * GB)
        flat = AWS_2008.transfer_out_cost(100_000 * GB)
        assert bulk == pytest.approx(1800 + 6400 + 6500)
        assert bulk < flat

    def test_all_components_tierable(self):
        model = TieredPricingModel(
            AWS_2008,
            transfer_in=TieredRate.flat(0.05),
            storage=TieredRate.flat(0.30),
            cpu=TieredRate([(100.0, 0.10)], 0.05),
        )
        assert model.transfer_in_cost(GB) == pytest.approx(0.05)
        assert model.monthly_storage_cost(GB) == pytest.approx(0.30)
        assert model.cpu_cost(200 * HOUR) == pytest.approx(10.0 + 5.0)

    def test_negative_quantities_rejected(self):
        with pytest.raises(ValueError):
            AWS_2008_TIERED_EGRESS.transfer_out_cost(-1.0)

    def test_works_with_compute_cost(self, montage1):
        """TieredPricingModel plugs into the existing cost attribution."""
        result = simulate(montage1, 8, record_trace=False)
        plan = ExecutionPlan.provisioned(8)
        flat = compute_cost(result, AWS_2008, plan)
        tiered = compute_cost(result, AWS_2008_TIERED_EGRESS, plan)
        # Only the egress component differs (first bracket: 0.18 vs 0.16).
        assert tiered.cpu_cost == pytest.approx(flat.cpu_cost)
        assert tiered.transfer_in_cost == pytest.approx(flat.transfer_in_cost)
        assert tiered.transfer_out_cost == pytest.approx(
            flat.transfer_out_cost * 0.18 / 0.16
        )

    def test_whole_sky_under_real_egress(self):
        """The paper's Q3 egress volume (3,900 x 2.25 GB ≈ 8.8 TB/run)
        stays in the 2008 first bracket — the flat $0.16 understated the
        outbound bill by ~12.5%."""
        outbound = 3900 * 2.2513 * GB
        tiered = AWS_2008_TIERED_EGRESS.transfer_out_cost(outbound)
        flat = AWS_2008.transfer_out_cost(outbound)
        assert tiered / flat == pytest.approx(0.18 / 0.16)
