"""Closed-form economics tests (Questions 2b and 3 arithmetic)."""

import math

import pytest

from repro.core.costs import CostBreakdown
from repro.core.economics import (
    archive_economics,
    full_sky_cost,
    store_vs_recompute_months,
)
from repro.core.pricing import AWS_2008
from repro.util.units import GB, MB, TB


class TestArchiveEconomics:
    def test_paper_worked_example(self):
        """$1,800 / ($2.22 - $2.12) = 18,000 mosaics per month."""
        e = archive_economics(
            archive_bytes=12 * TB,
            cost_per_request_staged=2.22,
            cost_per_request_prestaged=2.12,
            pricing=AWS_2008,
        )
        assert e.monthly_storage_cost == pytest.approx(1800.0)
        assert e.initial_transfer_cost == pytest.approx(1200.0)
        assert e.saving_per_request == pytest.approx(0.10)
        assert e.break_even_requests_per_month == pytest.approx(18000.0)

    def test_no_saving_means_never_breaks_even(self):
        e = archive_economics(1 * TB, 2.0, 2.0, AWS_2008)
        assert math.isinf(e.break_even_requests_per_month)
        assert math.isinf(e.amortization_months(1e9))

    def test_amortization(self):
        e = archive_economics(12 * TB, 2.22, 2.12, AWS_2008)
        # At 36,000 requests/month: net saving $1,800/mo; $1,200 upload
        # pays back in 2/3 month.
        assert e.amortization_months(36000.0) == pytest.approx(2.0 / 3.0)
        # Below break-even, never.
        assert math.isinf(e.amortization_months(17000.0))

    def test_amortization_rejects_negative_volume(self):
        e = archive_economics(1 * TB, 2.0, 1.0, AWS_2008)
        with pytest.raises(ValueError):
            e.amortization_months(-1.0)

    def test_negative_archive_rejected(self):
        with pytest.raises(ValueError):
            archive_economics(-1.0, 2.0, 1.0, AWS_2008)


class TestStoreVsRecompute:
    @pytest.mark.parametrize(
        "cpu_cost,size_mb,months",
        [
            # The paper's three worked examples (Section 6, Question 3).
            (0.56, 173.46, 21.52),
            (2.03, 557.9, 24.25),
            (8.40, 2229.0, 25.12),
        ],
    )
    def test_paper_horizons(self, cpu_cost, size_mb, months):
        ours = store_vs_recompute_months(cpu_cost, size_mb * MB, AWS_2008)
        assert ours == pytest.approx(months, rel=0.01)

    def test_zero_size_is_forever(self):
        assert math.isinf(store_vs_recompute_months(1.0, 0.0, AWS_2008))

    def test_negative_cost_rejected(self):
        with pytest.raises(ValueError):
            store_vs_recompute_months(-1.0, GB, AWS_2008)


class TestFullSky:
    def test_paper_total(self):
        """3,900 x $8.88 = $34,632."""
        per_plate = CostBreakdown(8.40, 0.03, 0.10, 0.35)
        sky = full_sky_cost(3900, per_plate)
        assert sky.total.total == pytest.approx(3900 * per_plate.total)
        assert sky.total.total == pytest.approx(34632.0, rel=0.01)

    def test_negative_plates_rejected(self):
        with pytest.raises(ValueError):
            full_sky_cost(-1, CostBreakdown(1, 0, 0, 0))
