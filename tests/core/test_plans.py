"""Execution-plan tests."""

import pytest

from repro.core.plans import ExecutionPlan, ProvisioningMode, VMOverhead
from repro.sim.datamanager import DataMode


class TestPlans:
    def test_provisioned_factory(self):
        plan = ExecutionPlan.provisioned(16, "cleanup")
        assert plan.provisioning is ProvisioningMode.PROVISIONED
        assert plan.data_mode is DataMode.CLEANUP
        assert plan.n_processors == 16

    def test_on_demand_factory(self):
        plan = ExecutionPlan.on_demand(610, DataMode.REMOTE_IO)
        assert plan.provisioning is ProvisioningMode.ON_DEMAND
        assert plan.data_mode is DataMode.REMOTE_IO

    def test_default_no_overhead(self):
        plan = ExecutionPlan.provisioned(1)
        assert plan.vm_overhead.total_seconds == 0.0
        assert plan.vm_overhead.fixed_cost_per_vm == 0.0

    def test_invalid_processor_count(self):
        with pytest.raises(ValueError):
            ExecutionPlan.provisioned(0)

    def test_invalid_mode_string(self):
        with pytest.raises(ValueError):
            ExecutionPlan.provisioned(1, "warp-drive")


class TestVMOverhead:
    def test_total(self):
        ov = VMOverhead(startup_seconds=120.0, teardown_seconds=30.0)
        assert ov.total_seconds == 150.0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            VMOverhead(startup_seconds=-1.0)
        with pytest.raises(ValueError):
            VMOverhead(fixed_cost_per_vm=-0.01)
