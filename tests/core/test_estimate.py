"""Analytic estimator tests: bounds hold, exact parts exact."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.costs import compute_cost
from repro.core.estimate import estimate_cost, makespan_bounds
from repro.core.plans import ExecutionPlan
from repro.core.pricing import AWS_2008
from repro.sim.executor import simulate
from repro.workflow.generators import (
    chain_workflow,
    fork_join_workflow,
    random_layered_workflow,
)


class TestMakespanBounds:
    def test_chain_bounds_tight(self):
        wf = chain_workflow(5, runtime=100.0, file_size=1.25e6)
        lower, upper = makespan_bounds(wf, 1, 1.25e6)
        # serial chain: CP == W; lead-in 1 s; out tail 1 s.
        assert lower == pytest.approx(501.0)
        assert upper == pytest.approx(502.0)
        measured = simulate(wf, 1, bandwidth_bytes_per_sec=1.25e6).makespan
        assert lower - 1e-9 <= measured <= upper + 1e-9

    @settings(max_examples=30, deadline=None)
    @given(
        layers=st.integers(1, 4),
        width=st.integers(1, 5),
        seed=st.integers(0, 5000),
        p=st.integers(1, 8),
    )
    def test_simulated_makespan_within_bounds(self, layers, width, seed, p):
        wf = random_layered_workflow(layers, width, seed=seed)
        lower, upper = makespan_bounds(wf, p)
        measured = simulate(wf, p, record_trace=False).makespan
        assert measured >= lower - 1e-6
        assert measured <= upper + 1e-6

    def test_montage_within_bounds(self, montage1):
        for p in (1, 8, 128):
            lower, upper = makespan_bounds(montage1, p)
            measured = simulate(montage1, p, record_trace=False).makespan
            assert lower - 1e-6 <= measured <= upper + 1e-6

    def test_invalid_processors(self):
        with pytest.raises(ValueError):
            makespan_bounds(chain_workflow(1), 0)


class TestCostEstimate:
    def test_transfer_components_exact(self, montage1):
        plan = ExecutionPlan.on_demand(118, "regular")
        est = estimate_cost(montage1, plan)
        measured = compute_cost(
            simulate(montage1, 118, "regular", record_trace=False),
            AWS_2008,
            plan,
        )
        assert est.cost.transfer_in_cost == pytest.approx(
            measured.transfer_in_cost
        )
        assert est.cost.transfer_out_cost == pytest.approx(
            measured.transfer_out_cost
        )

    def test_on_demand_cpu_exact(self, montage1):
        plan = ExecutionPlan.on_demand(118, "cleanup")
        est = estimate_cost(montage1, plan)
        assert est.cost.cpu_cost == pytest.approx(
            AWS_2008.cpu_cost(montage1.total_runtime())
        )

    def test_storage_bound_holds(self, montage1):
        plan = ExecutionPlan.provisioned(8, "regular")
        est = estimate_cost(montage1, plan)
        measured = compute_cost(
            simulate(montage1, 8, "regular", record_trace=False),
            AWS_2008,
            plan,
        )
        assert measured.storage_cost <= est.storage_cost_upper_bound + 1e-12

    @pytest.mark.parametrize("p", [1, 8, 64])
    def test_total_within_30_percent_of_simulation(self, montage1, p):
        plan = ExecutionPlan.provisioned(p, "regular")
        est = estimate_cost(montage1, plan)
        measured = compute_cost(
            simulate(montage1, p, "regular", record_trace=False),
            AWS_2008,
            plan,
        )
        assert est.total == pytest.approx(measured.total, rel=0.30)

    def test_vm_overhead_included(self):
        from repro.core.plans import VMOverhead

        wf = fork_join_workflow(4, runtime=100.0)
        plan = ExecutionPlan.provisioned(
            4, vm_overhead=VMOverhead(60.0, 60.0, fixed_cost_per_vm=0.01)
        )
        est = estimate_cost(wf, plan)
        base = estimate_cost(wf, ExecutionPlan.provisioned(4))
        assert est.cost.vm_fixed_cost == pytest.approx(0.04)
        assert est.cost.cpu_cost > base.cost.cpu_cost

    def test_estimate_is_fast(self, montage4):
        import time

        plan = ExecutionPlan.provisioned(64, "regular")
        t0 = time.perf_counter()
        estimate_cost(montage4, plan)
        elapsed = time.perf_counter() - t0
        assert elapsed < 0.5  # vs ~1 s simulating the 4-degree workflow
