"""Fee-structure tests pinned to the paper's Section 3 rates."""

import pytest
from hypothesis import given, strategies as st

from repro.core.pricing import (
    AWS_2008,
    FREE_TRANSFERS,
    PricingModel,
    STORAGE_HEAVY,
    TRANSFER_HEAVY,
)
from repro.util.units import GB, HOUR, MONTH, TB


class TestAws2008Rates:
    def test_headline_rates(self):
        assert AWS_2008.storage_per_gb_month == 0.15
        assert AWS_2008.transfer_in_per_gb == 0.10
        assert AWS_2008.transfer_out_per_gb == 0.16
        assert AWS_2008.cpu_per_hour == 0.10

    def test_normalized_rates(self):
        # "$ per CPU-second" etc. — the paper's least-granularity units.
        assert AWS_2008.cpu_per_second == pytest.approx(0.10 / 3600)
        assert AWS_2008.transfer_in_per_byte == pytest.approx(0.10 / GB)
        assert AWS_2008.storage_per_byte_second == pytest.approx(
            0.15 / GB / MONTH
        )

    def test_cpu_hour_costs_ten_cents(self):
        assert AWS_2008.cpu_cost(HOUR) == pytest.approx(0.10)

    def test_gb_transfers(self):
        assert AWS_2008.transfer_in_cost(GB) == pytest.approx(0.10)
        assert AWS_2008.transfer_out_cost(GB) == pytest.approx(0.16)

    def test_gb_month_storage(self):
        assert AWS_2008.storage_cost(GB * MONTH) == pytest.approx(0.15)

    def test_2mass_monthly_bill(self):
        # The paper's Q2b: 12 TB -> $1,800/month.
        assert AWS_2008.monthly_storage_cost(12 * TB) == pytest.approx(1800.0)


class TestValidation:
    def test_negative_rate_rejected(self):
        with pytest.raises(ValueError):
            PricingModel("bad", -0.1, 0.1, 0.1, 0.1)

    def test_negative_quantities_rejected(self):
        with pytest.raises(ValueError):
            AWS_2008.cpu_cost(-1.0)
        with pytest.raises(ValueError):
            AWS_2008.storage_cost(-1.0)
        with pytest.raises(ValueError):
            AWS_2008.transfer_in_cost(-1.0)
        with pytest.raises(ValueError):
            AWS_2008.transfer_out_cost(-1.0)
        with pytest.raises(ValueError):
            AWS_2008.monthly_storage_cost(-1.0)
        with pytest.raises(ValueError):
            AWS_2008.cpu_cost(1.0, n_instances=0)


class TestBillingGranularity:
    def test_hourly_quantum_rounds_up(self):
        hourly = AWS_2008.with_quantum(cpu_quantum_seconds=3600.0)
        # 90 minutes on one instance bills 2 hours.
        assert hourly.cpu_cost(90 * 60) == pytest.approx(0.20)
        # Exactly one hour bills one hour.
        assert hourly.cpu_cost(3600.0) == pytest.approx(0.10)

    def test_per_instance_rounding(self):
        hourly = AWS_2008.with_quantum(cpu_quantum_seconds=3600.0)
        # 4 instances x 30 min each = 2 CPU-hours of work, billed as 4.
        assert hourly.cpu_cost(4 * 1800.0, n_instances=4) == pytest.approx(
            0.40
        )

    def test_quantized_never_cheaper(self):
        hourly = AWS_2008.with_quantum(cpu_quantum_seconds=3600.0)
        for seconds in (1.0, 1800.0, 3600.0, 5400.0, 7200.0):
            assert hourly.cpu_cost(seconds) >= AWS_2008.cpu_cost(seconds) - 1e-12

    def test_storage_quantum(self):
        q = AWS_2008.with_quantum(storage_quantum_gb_months=1.0)
        # Half a GB-month bills a full GB-month.
        assert q.storage_cost(0.5 * GB * MONTH) == pytest.approx(0.15)


class TestVariants:
    def test_scaled_multipliers(self):
        p = AWS_2008.scaled(storage=2.0, transfer=0.5, cpu=3.0)
        assert p.storage_per_gb_month == pytest.approx(0.30)
        assert p.transfer_in_per_gb == pytest.approx(0.05)
        assert p.transfer_out_per_gb == pytest.approx(0.08)
        assert p.cpu_per_hour == pytest.approx(0.30)

    def test_presets_shape(self):
        assert STORAGE_HEAVY.storage_per_gb_month > AWS_2008.storage_per_gb_month
        assert STORAGE_HEAVY.transfer_in_per_gb < AWS_2008.transfer_in_per_gb
        assert TRANSFER_HEAVY.storage_per_gb_month < AWS_2008.storage_per_gb_month
        assert TRANSFER_HEAVY.transfer_out_per_gb > AWS_2008.transfer_out_per_gb
        assert FREE_TRANSFERS.transfer_in_per_gb == 0.0


@given(
    seconds=st.floats(0.0, 1e7, allow_nan=False),
    quantum=st.floats(1.0, 7200.0),
    instances=st.integers(1, 16),
)
def test_quantized_cpu_cost_bounds(seconds, quantum, instances):
    """Quantized billing is within one quantum per instance of continuous."""
    q = AWS_2008.with_quantum(cpu_quantum_seconds=quantum)
    billed = q.cpu_cost(seconds, n_instances=instances)
    continuous = AWS_2008.cpu_cost(seconds)
    assert billed >= continuous - 1e-9
    assert billed <= continuous + instances * quantum * AWS_2008.cpu_per_second + 1e-9
