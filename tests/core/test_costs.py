"""Cost-attribution tests (metrics x pricing x plan)."""

import pytest

from repro.core.costs import CostBreakdown, compute_cost
from repro.core.plans import ExecutionPlan, VMOverhead
from repro.core.pricing import AWS_2008
from repro.sim.executor import simulate
from repro.sim.results import SimulationResult
from repro.util.units import GB, HOUR, MONTH
from repro.workflow.generators import chain_workflow, fork_join_workflow


def _result(**overrides) -> SimulationResult:
    base = dict(
        workflow_name="synthetic",
        n_processors=4,
        data_mode="regular",
        makespan=HOUR,
        bytes_in=2 * GB,
        bytes_out=1 * GB,
        storage_byte_seconds=10 * GB * MONTH,
        peak_storage_bytes=GB,
        cpu_busy_seconds=2 * HOUR,
        compute_seconds=2 * HOUR,
        n_transfers_in=2,
        n_transfers_out=1,
        n_task_executions=10,
    )
    base.update(overrides)
    return SimulationResult(**base)


class TestBreakdownArithmetic:
    def test_components_and_total(self):
        c = CostBreakdown(1.0, 0.5, 0.2, 0.3, vm_fixed_cost=0.1)
        assert c.transfer_cost == pytest.approx(0.5)
        assert c.data_management_cost == pytest.approx(1.0)
        assert c.total == pytest.approx(2.1)

    def test_add(self):
        a = CostBreakdown(1.0, 2.0, 3.0, 4.0)
        b = CostBreakdown(0.5, 0.5, 0.5, 0.5)
        s = a + b
        assert s.cpu_cost == 1.5
        assert s.total == pytest.approx(a.total + b.total)

    def test_scaled(self):
        c = CostBreakdown(1.0, 2.0, 3.0, 4.0).scaled(3900.0)
        assert c.cpu_cost == pytest.approx(3900.0)
        assert c.total == pytest.approx(39000.0)


class TestProvisionedAttribution:
    def test_cpu_is_processors_times_makespan(self):
        res = _result()
        cost = compute_cost(res, AWS_2008, ExecutionPlan.provisioned(4))
        # 4 procs x 1 h x $0.10
        assert cost.cpu_cost == pytest.approx(0.40)

    def test_other_components(self):
        res = _result()
        cost = compute_cost(res, AWS_2008, ExecutionPlan.provisioned(4))
        assert cost.storage_cost == pytest.approx(10 * 0.15)
        assert cost.transfer_in_cost == pytest.approx(0.20)
        assert cost.transfer_out_cost == pytest.approx(0.16)

    def test_vm_overhead_extends_billing(self):
        res = _result()
        ov = VMOverhead(
            startup_seconds=HOUR / 2, teardown_seconds=HOUR / 2,
            fixed_cost_per_vm=0.05,
        )
        cost = compute_cost(
            res, AWS_2008, ExecutionPlan.provisioned(4, vm_overhead=ov)
        )
        # (1 h makespan + 1 h overhead) x 4 procs x $0.10 + 4 x $0.05
        assert cost.cpu_cost == pytest.approx(0.80)
        assert cost.vm_fixed_cost == pytest.approx(0.20)
        assert cost.total == pytest.approx(
            0.80 + 1.5 + 0.20 + 0.16 + 0.20
        )


class TestOnDemandAttribution:
    def test_cpu_bills_compute_seconds_only(self):
        res = _result()
        cost = compute_cost(res, AWS_2008, ExecutionPlan.on_demand(4))
        # 2 CPU-hours of actual work regardless of pool width or makespan.
        assert cost.cpu_cost == pytest.approx(0.20)
        assert cost.vm_fixed_cost == 0.0

    def test_on_demand_cpu_invariant_across_modes(self, montage1):
        """Figure 10: 'The CPU cost is invariant between the three
        execution modes.'"""
        costs = []
        for mode in ("remote-io", "regular", "cleanup"):
            r = simulate(montage1, 158, mode, record_trace=False)
            c = compute_cost(r, AWS_2008, ExecutionPlan.on_demand(158, mode))
            costs.append(c.cpu_cost)
        assert costs[0] == pytest.approx(costs[1])
        assert costs[1] == pytest.approx(costs[2])

    def test_provisioned_at_least_on_demand(self):
        """Holding P processors can never bill less CPU than Σ runtimes."""
        wf = fork_join_workflow(7, runtime=50.0)
        for p in (1, 2, 4, 8):
            r = simulate(wf, p, record_trace=False)
            prov = compute_cost(r, AWS_2008, ExecutionPlan.provisioned(p))
            ond = compute_cost(r, AWS_2008, ExecutionPlan.on_demand(p))
            assert prov.cpu_cost >= ond.cpu_cost - 1e-9

    def test_paper_headline_provisioned_gap(self, montage4):
        """The paper: 4° costs $13.92 provisioned on 128 but $8.89
        on-demand — the provisioned premium is large at high P."""
        r = simulate(montage4, 128, record_trace=False)
        prov = compute_cost(r, AWS_2008, ExecutionPlan.provisioned(128))
        ond = compute_cost(r, AWS_2008, ExecutionPlan.on_demand(128))
        assert prov.total > 1.5 * ond.total


class TestEndToEnd:
    def test_chain_cost_by_hand(self):
        # chain(2): runtime 200 s total; 1.25 MB in, 1.25 MB out;
        # storage 303 file-seconds (see test_datamanager).
        wf = chain_workflow(2, runtime=100.0, file_size=1.25e6)
        r = simulate(wf, 1, bandwidth_bytes_per_sec=1.25e6)
        cost = compute_cost(r, AWS_2008, ExecutionPlan.provisioned(1))
        assert cost.cpu_cost == pytest.approx(202.0 / 3600 * 0.10)
        assert cost.transfer_in_cost == pytest.approx(1.25e6 / 1e9 * 0.10)
        assert cost.transfer_out_cost == pytest.approx(1.25e6 / 1e9 * 0.16)
        assert cost.storage_cost == pytest.approx(
            303 * 1.25e6 / 1e9 / (30 * 24 * 3600) * 0.15
        )
