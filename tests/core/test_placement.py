"""Data-placement optimization tests."""

import math

import pytest

from repro.core.placement import DatasetProfile, optimize_placement
from repro.core.pricing import AWS_2008
from repro.util.units import GB, MB, TB


def _decide(datasets, **kw):
    return {
        d.dataset.name: d for d in optimize_placement(datasets, **kw)
    }


class TestThresholdRule:
    def test_paper_2mass_example(self):
        """Hosting 2MASS pays above ~21k 2-degree mosaics/month (the
        unrounded form of the paper's 18,000)."""
        mass = DatasetProfile(
            name="2mass",
            dataset_bytes=12 * TB,
            bytes_per_request=854.9 * MB,  # the 2-degree input volume
            requests_per_month=25_000.0,
        )
        d = _decide([mass])["2mass"]
        assert d.host
        assert d.monthly_storage_cost == pytest.approx(1800.0)
        assert d.break_even_requests_per_month == pytest.approx(
            21_054, rel=0.01
        )

    def test_below_break_even_not_hosted(self):
        mass = DatasetProfile("2mass", 12 * TB, 854.9 * MB, 10_000.0)
        assert not _decide([mass])["2mass"].host

    def test_popular_small_dataset_hosted(self):
        # 100 GB dataset, 1 GB per request, 1,000 requests/month:
        # storage $15/mo vs $100/mo transfer saving.
        ds = DatasetProfile("popular", 100 * GB, GB, 1000.0)
        d = _decide([ds])["popular"]
        assert d.host
        assert d.monthly_net_saving == pytest.approx(100.0 - 15.0)
        assert d.payback_months == pytest.approx(10.0 / 85.0)

    def test_unpopular_large_dataset_rejected(self):
        ds = DatasetProfile("cold", 10 * TB, GB, 5.0)
        d = _decide([ds])["cold"]
        assert not d.host
        assert math.isinf(d.payback_months)

    def test_decisions_independent(self):
        hot = DatasetProfile("hot", 100 * GB, GB, 1000.0)
        cold = DatasetProfile("cold", 10 * TB, GB, 5.0)
        decisions = _decide([hot, cold])
        assert decisions["hot"].host
        assert not decisions["cold"].host


class TestAmortizationHorizon:
    def test_horizon_blocks_slow_payback(self):
        # Net saving $85/mo; upload $10 -> payback 0.12 mo: hosted even
        # under a tight horizon.
        fast = DatasetProfile("fast", 100 * GB, GB, 1000.0)
        # Net saving $1/mo; upload $100 -> payback 100 months.
        slow = DatasetProfile("slow", 1 * TB, GB, 1510.0)
        no_horizon = _decide([fast, slow])
        assert no_horizon["fast"].host and no_horizon["slow"].host
        with_horizon = _decide(
            [fast, slow], amortization_horizon_months=12.0
        )
        assert with_horizon["fast"].host
        assert not with_horizon["slow"].host

    def test_invalid_horizon(self):
        with pytest.raises(ValueError):
            optimize_placement([], amortization_horizon_months=0.0)


class TestValidation:
    def test_negative_fields_rejected(self):
        with pytest.raises(ValueError):
            DatasetProfile("x", -1.0, 1.0, 1.0)
        with pytest.raises(ValueError):
            DatasetProfile("x", 1.0, -1.0, 1.0)
        with pytest.raises(ValueError):
            DatasetProfile("x", 1.0, 1.0, -1.0)

    def test_zero_demand_never_hosted(self):
        ds = DatasetProfile("idle", GB, GB, 0.0)
        d = _decide([ds])["idle"]
        assert not d.host
        assert d.monthly_transfer_saving == 0.0
