"""Processor-sweep and Pareto-frontier tests."""

import pytest

from repro.core.pricing import AWS_2008
from repro.core.tradeoff import (
    geometric_processors,
    pareto_frontier,
    processor_sweep,
)
from repro.workflow.generators import fork_join_workflow


class TestGeometricProcessors:
    def test_paper_ladder(self):
        assert geometric_processors(128) == [1, 2, 4, 8, 16, 32, 64, 128]

    def test_non_power_cap(self):
        assert geometric_processors(100) == [1, 2, 4, 8, 16, 32, 64]

    def test_invalid(self):
        with pytest.raises(ValueError):
            geometric_processors(0)


class TestSweep:
    @pytest.fixture(scope="class")
    def points(self):
        wf = fork_join_workflow(16, runtime=100.0, file_size=2e6)
        return processor_sweep(wf, [1, 2, 4, 8, 16])

    def test_one_point_per_processor_count(self, points):
        assert [p.n_processors for p in points] == [1, 2, 4, 8, 16]

    def test_makespan_monotone_for_forkjoin(self, points):
        spans = [p.makespan for p in points]
        assert spans == sorted(spans, reverse=True)

    def test_transfer_cost_constant(self, points):
        xfers = {round(p.cost.transfer_cost, 9) for p in points}
        assert len(xfers) == 1

    def test_costs_priced_with_given_model(self, points):
        for p in points:
            assert p.total_cost == pytest.approx(p.cost.total)
            expected_cpu = AWS_2008.cpu_cost(p.n_processors * p.makespan)
            assert p.cost.cpu_cost == pytest.approx(expected_cpu)


class TestPareto:
    def test_frontier_members_are_nondominated(self):
        wf = fork_join_workflow(16, runtime=100.0, file_size=2e6)
        points = processor_sweep(wf, [1, 2, 4, 8, 16])
        frontier = pareto_frontier(points)
        assert frontier  # never empty for a non-empty sweep
        for f in frontier:
            dominated = any(
                (o.total_cost <= f.total_cost and o.makespan < f.makespan)
                or (o.total_cost < f.total_cost and o.makespan <= f.makespan)
                for o in points
            )
            assert not dominated

    def test_frontier_sorted_and_strictly_improving(self):
        wf = fork_join_workflow(16, runtime=100.0, file_size=2e6)
        frontier = pareto_frontier(processor_sweep(wf, [1, 2, 4, 8, 16]))
        costs = [f.total_cost for f in frontier]
        spans = [f.makespan for f in frontier]
        assert costs == sorted(costs)
        assert spans == sorted(spans, reverse=True)

    def test_empty_input(self):
        assert pareto_frontier([]) == []
