"""CLI tests for the extension subcommands and flags."""

import pytest

from repro.cli import main


class TestDataflowCommand:
    def test_dataflow_tables(self, capsys):
        assert main(["dataflow", "--degree", "1"]) == 0
        out = capsys.readouterr().out
        assert "reuse factor" in out
        assert "remote-io" in out
        assert "File fan-out" in out
        assert "Data volume per workflow level" in out
        # The template header feeds all 40 mProjects.
        assert "40" in out


class TestSimulateExtensionFlags:
    def test_boot_seconds_lengthens_run(self, capsys):
        main(["simulate", "--degree", "1", "--processors", "8"])
        base = capsys.readouterr().out
        main([
            "simulate", "--degree", "1", "--processors", "8",
            "--boot-seconds", "600",
        ])
        delayed = capsys.readouterr().out

        def makespan(text):
            for line in text.splitlines():
                if line.startswith("makespan"):
                    return line
            raise AssertionError("no makespan line")

        assert makespan(base) != makespan(delayed)

    def test_storage_capacity_flag(self, capsys):
        assert main([
            "simulate", "--degree", "1", "--mode", "cleanup",
            "--storage-capacity-gb", "0.7",
        ]) == 0
        out = capsys.readouterr().out
        assert "TOTAL" in out

    def test_infeasible_capacity_errors(self):
        with pytest.raises(RuntimeError, match="storage capacity"):
            main([
                "simulate", "--degree", "1", "--mode", "cleanup",
                "--storage-capacity-gb", "0.1",
            ])


class TestServiceModeTrace:
    def test_service_with_trace_records(self, montage1):
        from repro.service.arrivals import ServiceRequest
        from repro.service.simulator import ServiceSimulator

        sim = ServiceSimulator(16, "cleanup", record_trace=True)
        res = sim.run([ServiceRequest("r0", montage1, 0.0)])
        records = res.outcomes[0].result.task_records
        assert len(records) == 203
        assert res.outcomes[0].result.storage_curve is not None

    def test_service_contended_link(self, montage1):
        from repro.service.arrivals import ServiceRequest
        from repro.service.simulator import ServiceSimulator

        free = ServiceSimulator(16).run(
            [ServiceRequest("r0", montage1, 0.0)]
        )
        queued = ServiceSimulator(16, link_contention=True).run(
            [ServiceRequest("r0", montage1, 0.0)]
        )
        assert queued.outcomes[0].response_time >= (
            free.outcomes[0].response_time - 1e-9
        )
