"""Interrupted grid reruns under damaged shard checkpoints.

``test_grid.py`` proves a clean interrupted rerun executes only the
missing shards; this module covers the unhappy path: checkpoints that
are present but *rotten*.  A corrupt shard blob must be quarantined
(renamed ``*.corrupt``), its shard transparently re-executed, the fresh
checkpoint republished at the real path — and the merged result must be
identical to an undamaged run's.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro.grid.engine as engine
from repro.grid import GridPlan, plan_shards, run_grid
from repro.montage.generator import montage_workflow
from repro.sweep.cache import SimCache


def small_plan(n_plates: int = 5) -> GridPlan:
    return GridPlan(
        plates=tuple(
            montage_workflow(
                0.4, jitter=0.05, seed=i, name=f"rc-plate{i:02d}"
            )
            for i in range(n_plates)
        ),
        processors=(2,),
        probabilities=(0.0, 0.2),
        seeds=(1,),
    )


@pytest.fixture()
def serial(monkeypatch):
    """Pin the engine to the serial path so _execute_shard is patchable."""
    monkeypatch.setenv("REPRO_SWEEP_WORKERS", "1")


def _counting(monkeypatch):
    calls: list[tuple] = []
    real = engine._execute_shard

    def wrapper(*args):
        calls.append(args)
        return real(*args)

    monkeypatch.setattr(engine, "_execute_shard", wrapper)
    return calls


class TestResumeThroughQuarantine:
    def test_corrupt_and_missing_shards_reexecute(
        self, tmp_path, monkeypatch, serial
    ):
        plan = small_plan(5)
        n_shards = len(plan_shards(plan, 3))
        assert n_shards >= 2
        full = run_grid(plan, shards=3, cache=SimCache(tmp_path))

        blobs = sorted(tmp_path.glob("*/*.blob.pkl"))
        assert len(blobs) == n_shards
        # One checkpoint rots, one vanishes — an interrupted campaign
        # hit by disk damage.
        blobs[0].write_bytes(b"\x80\x04 truncated garbage")
        blobs[1].unlink()

        calls = _counting(monkeypatch)
        events: list[str] = []
        rerun = run_grid(
            plan,
            shards=3,
            cache=SimCache(tmp_path),
            progress=events.append,
        )
        # Exactly the damaged shards re-executed; the rest answered
        # from their checkpoints.
        assert len(calls) == 2
        assert sum("from checkpoint" in e for e in events) == n_shards - 2
        assert np.array_equal(full.batch, rerun.batch)
        # The rotten pickle was quarantined, never deleted.
        assert blobs[0].with_suffix(".corrupt").exists()
        assert not blobs[0].exists() or blobs[0].stat().st_size > 50

    def test_requarantined_checkpoint_is_republished(
        self, tmp_path, monkeypatch, serial
    ):
        plan = small_plan(3)
        run_grid(plan, shards=2, cache=SimCache(tmp_path))
        blob = sorted(tmp_path.glob("*/*.blob.pkl"))[0]
        blob.write_bytes(b"rotten")
        run_grid(plan, shards=2, cache=SimCache(tmp_path))

        # The re-execution republished a good checkpoint at the real
        # path, so a third run is answered entirely from the cache.
        calls = _counting(monkeypatch)
        events: list[str] = []
        third = run_grid(
            plan,
            shards=2,
            cache=SimCache(tmp_path),
            progress=events.append,
        )
        assert calls == []
        assert all("from checkpoint" in e for e in events)
        assert not third.batch["aborted"][
            : len(plan.seeds) * len(plan.probabilities)
        ].all()

    def test_wrong_shaped_checkpoint_is_ignored(self, tmp_path, serial):
        # A *valid* pickle of the wrong shape (e.g. from a stale layout)
        # must be treated as a miss, not merged.
        import pickle

        plan = small_plan(2)
        full = run_grid(plan, shards=1, cache=SimCache(tmp_path))
        blob = next(tmp_path.glob("*/*.blob.pkl"))
        blob.write_bytes(pickle.dumps(np.zeros(3)))
        rerun = run_grid(plan, shards=1, cache=SimCache(tmp_path))
        assert np.array_equal(full.batch, rerun.batch)
