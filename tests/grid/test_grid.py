"""Campaign grid engine: plan identity, sharding, columnar equality,
checkpointed incremental reruns, and the differential audit against the
event engine."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cli import main
from repro.core.costs import compute_cost
from repro.core.plans import ExecutionPlan
from repro.core.pricing import AWS_2008
from repro.grid import GridPlan, GridResult, plan_shards, run_grid, shard_of
from repro.grid.engine import DEFAULT_SHARDS, _execute_shard, _shard_args
from repro.montage.generator import montage_workflow
from repro.sim import FailureModel, simulate
from repro.sim.kernel import SUMMARY_DTYPE, run_monte_carlo, summary_batch
from repro.sweep.cache import SimCache


def plates(n: int = 4) -> tuple:
    return tuple(
        montage_workflow(0.4, jitter=0.05, seed=i, name=f"t-plate{i:02d}")
        for i in range(n)
    )


def small_plan(n_plates: int = 4, **overrides) -> GridPlan:
    kwargs = dict(
        plates=plates(n_plates),
        processors=(2, 4),
        probabilities=(0.0, 0.05),
        seeds=(1, 2),
    )
    kwargs.update(overrides)
    return GridPlan(**kwargs)


class TestGridPlan:
    def test_shape(self):
        plan = small_plan()
        assert plan.cells_per_plate == 2 * 2 * 2
        assert plan.n_cells == 4 * 8

    def test_fingerprint_stable_and_sensitive(self):
        a, b = small_plan(), small_plan()
        assert a.fingerprint() == b.fingerprint()
        assert a.fingerprint() != small_plan(seeds=(1, 3)).fingerprint()
        assert (
            a.fingerprint()
            != small_plan(probabilities=(0.0, 0.06)).fingerprint()
        )

    def test_validation(self):
        with pytest.raises(ValueError, match="at least one plate"):
            GridPlan(plates=(), processors=(2,))
        with pytest.raises(ValueError, match="at least one processor"):
            GridPlan(plates=plates(1), processors=(0,))
        with pytest.raises(ValueError, match="probability"):
            GridPlan(
                plates=plates(1), processors=(2,), probabilities=(1.5,)
            )
        with pytest.raises(KeyError, match="unknown ordering"):
            GridPlan(plates=plates(1), processors=(2,), ordering="bogus")

    def test_plan_is_picklable(self):
        import pickle

        plan = small_plan(2)
        clone = pickle.loads(pickle.dumps(plan))
        assert clone.fingerprint() == plan.fingerprint()


class TestSharding:
    def test_shard_of_stable(self):
        fp = plates(1)[0].fingerprint()
        assert shard_of(fp, 8) == shard_of(fp, 8)
        assert 0 <= shard_of(fp, 3) < 3

    def test_partition_covers_every_plate_once(self):
        plan = small_plan(7)
        assignment = plan_shards(plan, 3)
        flat = sorted(i for shard in assignment for i in shard)
        assert flat == list(range(7))
        assert all(shard == sorted(shard) for shard in assignment)

    def test_default_shard_count(self):
        plan = small_plan(2)
        assert len(plan_shards(plan)) <= DEFAULT_SHARDS

    def test_order_independent_partition(self):
        # The partition hashes plate *content*, so reordering the plan's
        # plates regroups the same fingerprints into the same shards.
        p = plates(5)
        a = small_plan(plates=p)
        b = small_plan(plates=tuple(reversed(p)))
        fps = {wf.fingerprint() for wf in p}

        def groups(plan):
            plate_fps = plan.plate_fingerprints()
            return {
                frozenset(plate_fps[i] for i in shard)
                for shard in plan_shards(plan, 3)
            }

        assert groups(a) == groups(b)
        assert fps == {fp for g in groups(a) for fp in g}


class TestRunGrid:
    def test_columnar_matches_object_cells(self):
        plan = small_plan(2)
        result = run_grid(plan, shards=1, cache=SimCache())
        for pi, plate in enumerate(plan.plates):
            for ni, n in enumerate(plan.processors):
                cells = run_monte_carlo(
                    plate,
                    plan.kernel_config(n),
                    plan.probabilities,
                    plan.seeds,
                    max_retries=plan.max_retries,
                )
                it = iter(cells)
                for qi in range(len(plan.probabilities)):
                    for si in range(len(plan.seeds)):
                        row = result.row(pi, ni, qi, si)
                        cell = next(it)
                        assert row.aborted == cell.aborted
                        if not cell.aborted:
                            assert row.makespan == cell.result.makespan
                            assert (
                                row.storage_byte_seconds
                                == cell.result.storage_byte_seconds
                            )

    def test_merge_deterministic_across_shard_counts(self):
        plan = small_plan(5)
        one = run_grid(plan, shards=1, cache=SimCache())
        three = run_grid(plan, shards=3, cache=SimCache())
        assert np.array_equal(one.batch, three.batch)

    def test_differential_vs_event_engine_every_shard(self):
        # Subsample one cell from every shard and reconcile it against a
        # stand-alone event-engine run, byte for byte.
        plan = small_plan(4)
        result = run_grid(plan, shards=3, cache=SimCache())
        for shard in plan_shards(plan, 3):
            pi = shard[0]
            row = result.row(pi, 1, 1, 0)
            ref = simulate(
                plan.plates[pi],
                plan.processors[1],
                plan.data_mode,
                failures=FailureModel(
                    plan.probabilities[1],
                    seed=plan.seeds[0],
                    max_retries=plan.max_retries,
                ),
                kernel="event",
            )
            assert row.makespan == ref.makespan
            assert row.bytes_in == ref.bytes_in
            assert row.bytes_out == ref.bytes_out
            assert row.storage_byte_seconds == ref.storage_byte_seconds
            assert row.cpu_busy_seconds == ref.cpu_busy_seconds
            assert row.n_task_failures == ref.n_task_failures

    def test_incremental_rerun_touches_only_missing_shards(
        self, tmp_path, monkeypatch
    ):
        plan = small_plan(4)
        cache = SimCache(tmp_path)
        events: list[str] = []
        full = run_grid(plan, shards=3, cache=cache, progress=events.append)
        executed = [e for e in events if "executed" in e]
        assert len(executed) == len(plan_shards(plan, 3))

        # Simulate an interrupted campaign: drop one shard's checkpoint.
        blobs = sorted(tmp_path.glob("*/*.blob.pkl"))
        assert len(blobs) == len(plan_shards(plan, 3))
        blobs[0].unlink()

        # The rerun must execute exactly the missing shard; make any
        # other shard execution blow up to prove it can't happen twice.
        events2: list[str] = []
        rerun_cache = SimCache(tmp_path)
        import repro.grid.engine as engine

        real_execute = engine._execute_shard
        calls = []

        def counting_execute(*args):
            calls.append(args)
            return real_execute(*args)

        monkeypatch.setattr(engine, "_execute_shard", counting_execute)
        rerun = run_grid(
            plan, shards=3, cache=rerun_cache, progress=events2.append
        )
        assert len(calls) == 1
        n_shards = len(plan_shards(plan, 3))
        assert sum("from checkpoint" in e for e in events2) == n_shards - 1
        assert np.array_equal(full.batch, rerun.batch)

    def test_corrupt_checkpoint_reexecutes(self, tmp_path):
        plan = small_plan(2)
        cache = SimCache(tmp_path)
        full = run_grid(plan, shards=1, cache=cache)
        blob = next(tmp_path.glob("*/*.blob.pkl"))
        blob.write_bytes(b"not a pickle")
        rerun = run_grid(plan, shards=1, cache=SimCache(tmp_path))
        assert np.array_equal(full.batch, rerun.batch)

    def test_aborted_cells_flagged_not_fatal(self):
        plan = GridPlan(
            plates=plates(1),
            processors=(2,),
            probabilities=(0.0, 0.9),
            seeds=(1, 2, 3),
            max_retries=0,
        )
        result = run_grid(plan, shards=1, cache=SimCache())
        assert result.n_aborted > 0
        zero = result.batch[: len(plan.seeds)]
        assert not zero["aborted"].any()
        aborted = result.batch[result.batch["aborted"]]
        assert (aborted["makespan"] == 0.0).all()

    def test_shard_worker_roundtrip_is_picklable(self):
        # The pool pickles (args) and the result array; exercise the
        # exact payload the executor ships.
        import pickle

        plan = small_plan(2)
        args = _shard_args(plan, [0, 1])
        out = _execute_shard(*pickle.loads(pickle.dumps(args)))
        assert out.dtype == SUMMARY_DTYPE
        assert len(out) == 2 * plan.cells_per_plate


class TestGridResult:
    def test_rows_are_cost_compatible(self):
        plan = small_plan(1)
        result = run_grid(plan, shards=1, cache=SimCache())
        row = result.row(0, 0, 0, 0)
        cost = compute_cost(
            row, AWS_2008, ExecutionPlan.provisioned(row.n_processors)
        )
        assert cost.total > 0

    def test_to_rows_canonical_order(self):
        plan = small_plan(2)
        result = run_grid(plan, shards=1, cache=SimCache())
        rows = list(result.to_rows())
        assert len(rows) == plan.n_cells
        assert rows[0].plate == plan.plates[0].name
        assert rows[-1].plate == plan.plates[-1].name
        # Spot-check coordinates against .row indexing.
        i = result.index(1, 1, 1, 0)
        assert rows[i].n_processors == plan.processors[1]
        assert rows[i].probability == plan.probabilities[1]
        assert rows[i].seed == plan.seeds[0]

    def test_batch_shape_validated(self):
        with pytest.raises(ValueError, match="SUMMARY_DTYPE"):
            GridResult(
                plate_names=("a",),
                processors=(2,),
                probabilities=(0.0,),
                seeds=(1, 2),
                batch=summary_batch(3),
            )

    def test_column_is_view(self):
        plan = small_plan(1)
        result = run_grid(plan, shards=1, cache=SimCache())
        col = result.column("makespan")
        assert col.base is not None
        assert len(col) == plan.n_cells


class TestGridCli:
    def test_grid_command(self, capsys):
        assert (
            main(
                [
                    "grid",
                    "--plates", "2",
                    "--degree", "0.4",
                    "--processors", "2,4",
                    "--probabilities", "0,0.05",
                    "--seeds", "2",
                    "--shards", "2",
                    "--verbose",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "cells" in out
        assert "16" in out
        assert "cache:" in out
