"""Hypothesis strategies for arbitrary workflow DAGs.

The layered generator in :mod:`repro.workflow.generators` covers the
common shapes; this strategy builds *arbitrary* DAGs — every task may read
any mix of fresh input files and files produced by any earlier task, may
produce several outputs, and outputs may be explicitly marked — so the
property suites exercise corner shapes (multi-output tasks, long skinny
chains crossing wide fans, files consumed by many levels at once).
"""

from __future__ import annotations

from hypothesis import strategies as st

from repro.sweep.job import FailureSpec, SimJob
from repro.workflow.dag import FileSpec, Task, Workflow
from repro.workflow.scaling import scale_file_sizes

__all__ = ["workflows", "failure_specs", "sim_jobs", "ccr_scaled_pairs"]

#: The paper's three data-management modes, for sampled_from().
DATA_MODES = ("regular", "cleanup", "remote-io")


@st.composite
def workflows(
    draw,
    max_tasks: int = 12,
    max_outputs_per_task: int = 3,
    max_file_bytes: float = 5e6,
    max_runtime: float = 200.0,
) -> Workflow:
    """Draw a random valid workflow.

    Tasks are created in index order; task *i* may consume outputs of any
    task *j < i* (guaranteeing acyclicity) and/or fresh initial inputs.
    Every task consumes at least one file so the simulator's staging paths
    are always exercised.
    """
    n_tasks = draw(st.integers(1, max_tasks))
    wf = Workflow(f"hypo-{n_tasks}")
    produced: list[str] = []
    file_counter = 0

    def new_file(prefix: str) -> str:
        nonlocal file_counter
        name = f"{prefix}{file_counter}"
        file_counter += 1
        size = draw(st.floats(0.0, max_file_bytes, allow_nan=False))
        wf.add_file(FileSpec(name, size))
        return name

    for i in range(n_tasks):
        inputs: list[str] = []
        if produced:
            k = draw(st.integers(0, min(3, len(produced))))
            if k:
                # sample distinct indices into `produced`
                idxs = draw(
                    st.lists(
                        st.integers(0, len(produced) - 1),
                        min_size=k,
                        max_size=k,
                        unique=True,
                    )
                )
                inputs.extend(produced[j] for j in idxs)
        n_fresh = draw(st.integers(0 if inputs else 1, 2))
        inputs.extend(new_file("in") for _ in range(n_fresh))
        n_out = draw(st.integers(0, max_outputs_per_task))
        outputs = [new_file("f") for _ in range(n_out)]
        wf.add_task(
            Task(
                task_id=f"t{i}",
                runtime=draw(
                    st.floats(0.001, max_runtime, allow_nan=False)
                ),
                inputs=tuple(inputs),
                outputs=tuple(outputs),
                transformation=f"kind{i % 3}",
            )
        )
        produced.extend(outputs)

    # Randomly promote a few consumed intermediates to explicit outputs.
    consumed = [f for f in produced if wf.consumers_of(f)]
    if consumed:
        n_marks = draw(st.integers(0, min(2, len(consumed))))
        if n_marks:
            idxs = draw(
                st.lists(
                    st.integers(0, len(consumed) - 1),
                    min_size=n_marks,
                    max_size=n_marks,
                    unique=True,
                )
            )
            for j in idxs:
                wf.mark_output(consumed[j])
    wf.validate()
    return wf


@st.composite
def failure_specs(draw, max_probability: float = 0.3) -> FailureSpec:
    """Draw a declarative failure injection.

    The retry budget is kept far above what ``max_probability`` can
    realistically exhaust, so generated runs always complete (a 0.3^50
    streak never comes up) and properties see retries, not aborts.
    """
    return FailureSpec(
        task_failure_probability=draw(
            st.floats(0.0, max_probability, allow_nan=False)
        ),
        seed=draw(st.integers(0, 2**16)),
        max_retries=50,
    )


@st.composite
def sim_jobs(
    draw,
    max_tasks: int = 10,
    with_failures: bool = True,
) -> SimJob:
    """Draw a fully-specified simulation point over an arbitrary DAG.

    Covers all three data-management modes, both link models, per-task
    overhead, VM boot delay and (optionally) failure injection — the full
    cross-section the audit oracle must reconcile.
    """
    failures = None
    if with_failures and draw(st.booleans()):
        failures = draw(failure_specs())
    contended = draw(st.booleans())
    return SimJob(
        workflow=draw(workflows(max_tasks=max_tasks)),
        n_processors=draw(st.integers(1, 8)),
        data_mode=draw(st.sampled_from(DATA_MODES)),
        task_overhead_seconds=draw(st.sampled_from([0.0, 0.0, 2.5])),
        compute_ready_seconds=draw(st.sampled_from([0.0, 0.0, 45.0])),
        link_contention=contended,
        separate_links=contended and draw(st.booleans()),
        failures=failures,
    )


@st.composite
def ccr_scaled_pairs(
    draw, max_tasks: int = 10
) -> tuple[Workflow, Workflow, float]:
    """Draw ``(workflow, scaled workflow, factor)`` for CCR properties.

    The scaled workflow has every file size multiplied by ``factor``
    (the paper's CCRd/CCRr rescaling), runtimes untouched.
    """
    wf = draw(workflows(max_tasks=max_tasks))
    factor = draw(st.sampled_from([0.25, 0.5, 2.0, 4.0, 10.0]))
    return wf, scale_file_sizes(wf, factor), factor
