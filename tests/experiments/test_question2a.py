"""Question 2a (Figures 7-10) experiment tests."""

import pytest

from repro.experiments.question2a import MODES, run_question2a


@pytest.fixture(scope="module")
def fig7(montage1):
    return run_question2a(montage1)


class TestFigure7(object):
    def test_all_modes_present(self, fig7):
        assert set(fig7.by_mode) == set(MODES)

    def test_storage_ranking(self, fig7):
        # Figure 7 top: remote < cleanup < regular.
        assert (
            fig7.metrics("remote-io").storage_gb_hours
            < fig7.metrics("cleanup").storage_gb_hours
            < fig7.metrics("regular").storage_gb_hours
        )

    def test_transfer_ranking(self, fig7):
        # Figure 7 middle: remote I/O moves the most, both directions;
        # regular == cleanup.
        rem, reg, cln = (
            fig7.metrics("remote-io"),
            fig7.metrics("regular"),
            fig7.metrics("cleanup"),
        )
        assert rem.bytes_in > reg.bytes_in
        assert rem.bytes_out > reg.bytes_out
        assert reg.bytes_in == pytest.approx(cln.bytes_in)
        assert reg.bytes_out == pytest.approx(cln.bytes_out)

    def test_cost_ranking(self, fig7):
        # Figure 7 bottom: remote I/O costs the most; cleanup the least.
        rem, reg, cln = (
            fig7.metrics("remote-io"),
            fig7.metrics("regular"),
            fig7.metrics("cleanup"),
        )
        assert rem.dm_cost > reg.dm_cost >= cln.dm_cost

    def test_storage_cost_negligible_vs_transfers(self, fig7):
        # "The storage costs are negligible as compared to the data
        # transfer costs."
        for mode in MODES:
            m = fig7.metrics(mode)
            assert m.storage_cost < 0.05 * (
                m.transfer_in_cost + m.transfer_out_cost
            )

    def test_cpu_cost_invariant(self, fig7):
        cpu = {round(fig7.metrics(m).cpu_cost, 9) for m in MODES}
        assert len(cpu) == 1

    def test_cpu_slightly_higher_than_remote_dm(self, fig7):
        # Figure 10: "the CPU cost is slightly higher than the data
        # management costs for the remote I/O execution mode."
        m = fig7.metrics("remote-io")
        assert m.cpu_cost > m.dm_cost
        assert m.cpu_cost < 2.5 * m.dm_cost

    def test_defaults_to_full_parallelism(self, fig7):
        assert fig7.n_processors == 118


class TestFigure10Values:
    def test_1deg_totals(self, fig7):
        # Regular-mode request total ~= the paper's Figure 10 bar.
        assert fig7.metrics("regular").total_cost == pytest.approx(
            0.61, abs=0.03
        )

    def test_2deg_totals(self, montage2):
        res = run_question2a(montage2)
        # Paper: $2.22 staged-in total for the 2° mosaic.
        assert res.metrics("regular").total_cost == pytest.approx(
            2.22, abs=0.04
        )

    def test_table_renders(self, fig7):
        table = fig7.as_table()
        for mode in MODES:
            assert mode in table


class TestCSVExport:
    def test_csv_has_all_modes(self, fig7):
        import csv as csvmod
        import io

        rows = list(csvmod.DictReader(io.StringIO(fig7.as_csv())))
        assert [r["mode"] for r in rows] == list(MODES)
        reg = next(r for r in rows if r["mode"] == "regular")
        assert float(reg["cpu_cost"]) == pytest.approx(0.563, abs=0.001)
