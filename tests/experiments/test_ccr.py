"""CCR table and Figure 11 tests."""

import pytest

from repro.experiments.ccr import ccr_table, run_ccr_sweep


class TestCCRTable:
    def test_matches_paper(self):
        rows = dict(ccr_table())
        assert rows["montage-1deg"] == pytest.approx(0.053, abs=1e-6)
        assert rows["montage-2deg"] == pytest.approx(0.053, abs=1e-6)
        assert rows["montage-4deg"] == pytest.approx(0.045, abs=1e-6)


@pytest.fixture(scope="module")
def fig11(montage1):
    return run_ccr_sweep(montage1, ccr_values=(0.05, 0.2, 1.0, 4.0))


class TestFigure11Shape:
    def test_every_series_increases_with_ccr(self, fig11):
        pts = fig11.points
        for attr in (
            "cpu_cost",
            "storage_cost",
            "storage_cost_cleanup",
            "transfer_cost",
            "total_cost",
            "makespan",
        ):
            series = [getattr(p, attr) for p in pts]
            assert series == sorted(series), attr

    def test_transfer_scales_linearly(self, fig11):
        # Transfer fees are proportional to bytes, hence to CCR.
        p0, p3 = fig11.points[0], fig11.points[-1]
        assert p3.transfer_cost / p0.transfer_cost == pytest.approx(
            p3.ccr / p0.ccr, rel=1e-6
        )

    def test_storage_scales_superlinearly(self, fig11):
        # "the transfer and storage costs increase in proportion to the
        # increase in CCR or even higher (for the storage costs)" — bigger
        # files also stretch the makespan, compounding the integral.
        p0, p3 = fig11.points[0], fig11.points[-1]
        assert p3.storage_cost / p0.storage_cost > p3.ccr / p0.ccr

    def test_uses_8_processors_by_default(self, fig11):
        assert fig11.n_processors == 8

    def test_table_renders(self, fig11):
        text = fig11.as_table()
        assert "8 processors" in text
        assert "CCR" in text


class TestDefaults:
    def test_accepts_degree(self):
        res = run_ccr_sweep(1.0, ccr_values=(0.1,))
        assert res.points[0].ccr == 0.1
        assert res.workflow_name == "montage-1deg"


class TestCSVExport:
    def test_csv_roundtrip(self, fig11):
        import csv as csvmod
        import io

        rows = list(csvmod.DictReader(io.StringIO(fig11.as_csv())))
        assert len(rows) == len(fig11.points)
        assert float(rows[0]["ccr"]) == fig11.points[0].ccr
        assert float(rows[-1]["total_cost"]) == fig11.points[-1].total_cost
