"""Full-report runner smoke tests."""

from repro.experiments.runner import main, run_all


class TestRunner:
    def test_fast_report_contains_all_sections(self):
        report = run_all(fast=True)
        for marker in (
            "Figure 4",
            "Figure 7",
            "CCR table",
            "Figure 11",
            "Question 2b",
            "Question 3",
            "Paper-reported values",
        ):
            assert marker in report

    def test_fast_report_has_key_numbers(self):
        report = run_all(fast=True)
        assert "0.0530" in report  # CCR table
        assert "18,000" in report  # paper break-even row
        assert "$1,800" in report  # monthly archive storage

    def test_main_entrypoint(self, capsys):
        assert main(["--fast"]) == 0
        out = capsys.readouterr().out
        assert "Reproduction report" in out


class TestFullRunner:
    def test_full_report_covers_all_figures(self):
        """The non-fast report includes all three workloads (slower: runs
        the whole evaluation, ~15 s)."""
        report = run_all(fast=False)
        for marker in ("Figure 5", "Figure 6", "Figure 8", "Figure 9"):
            assert marker in report
        assert "montage-4deg" in report


class TestExtensionsFlag:
    def test_extensions_section(self):
        report = run_all(fast=True, extensions=True)
        assert "Extension / ablation studies" in report
        assert "Billing-granularity ablation" in report
        assert "Task-clustering ablation" in report
