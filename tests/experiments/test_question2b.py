"""Question 2b (archive hosting) experiment tests."""

import pytest

from repro.experiments.question2b import run_question2b


@pytest.fixture(scope="module")
def q2b(montage2):
    return run_question2b(montage2)


class TestQuestion2b:
    def test_monthly_storage_is_1800(self, q2b):
        assert q2b.monthly_storage_cost == pytest.approx(1800.0)

    def test_staged_request_cost_near_paper(self, q2b):
        # Paper: $2.22.
        assert q2b.cost_staged == pytest.approx(2.22, abs=0.04)

    def test_prestaged_request_cost_near_paper(self, q2b):
        # Paper: $2.12.
        assert q2b.cost_prestaged == pytest.approx(2.12, abs=0.03)

    def test_break_even_same_order_as_paper(self, q2b):
        # Paper: 18,000 mosaics/month (with its rounded $0.10 saving);
        # our unrounded saving of ~$0.0855 gives ~21,000.
        assert 15_000 < q2b.break_even_requests_per_month < 25_000

    def test_upload_cost(self, q2b):
        assert q2b.economics.initial_transfer_cost == pytest.approx(1200.0)

    def test_prestaging_only_sheds_input_transfer(self, q2b):
        saving = q2b.cost_staged - q2b.cost_prestaged
        assert saving == pytest.approx(q2b.economics.saving_per_request)
        assert saving > 0

    def test_table_renders(self, q2b):
        text = q2b.as_table()
        assert "break-even" in text
        assert "12 TB" in text

    def test_accepts_degree(self):
        res = run_question2b(1.0)
        assert res.workflow_name == "montage-1deg"
        # Smaller request -> smaller saving -> higher break-even volume.
        assert res.break_even_requests_per_month > 50_000
