"""Table-rendering tests."""

import pytest

from repro.experiments.report import (
    format_paper_comparison,
    format_table,
)


class TestFormatTable:
    def test_alignment(self):
        text = format_table(
            ("name", "value"),
            [("alpha", 1.0), ("b", 23.5)],
        )
        lines = text.splitlines()
        assert lines[0].startswith("name")
        assert "-" in lines[1]
        # numeric column is right-aligned: both values end the line
        assert lines[2].endswith("1")
        assert lines[3].endswith("23.5")

    def test_title(self):
        text = format_table(("a",), [(1,)], title="My Table")
        assert text.splitlines()[0] == "My Table"

    def test_row_width_mismatch(self):
        with pytest.raises(ValueError):
            format_table(("a", "b"), [(1,)])

    def test_empty_rows(self):
        text = format_table(("col",), [])
        assert "col" in text

    def test_money_and_percent_treated_numeric(self):
        text = format_table(
            ("q", "v"), [("x", "$1.00"), ("y", "$234.56")]
        )
        lines = text.splitlines()
        assert lines[2].endswith("$1.00")
        assert lines[3].endswith("$234.56")

    def test_large_floats_no_decimals(self):
        text = format_table(("v",), [(34_632_000.0,)])
        assert "34,632,000" in text


class TestPaperComparison:
    def test_headers(self):
        text = format_paper_comparison(
            [("cost", "$8.88", "$9.06")], title="t"
        )
        assert "paper" in text
        assert "measured" in text
        assert "$9.06" in text
