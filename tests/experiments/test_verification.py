"""Programmatic paper-verification tests."""

import pytest

from repro.experiments.verification import (
    ComparisonRow,
    comparison_table,
    verify_reproduction,
)


@pytest.fixture(scope="module")
def rows():
    return verify_reproduction()


class TestVerification:
    def test_every_claim_reproduced(self, rows):
        failed = [r for r in rows if not r.ok]
        assert not failed, "\n".join(
            f"{r.experiment}/{r.quantity}: paper={r.paper_value} "
            f"measured={r.measured_value}"
            for r in failed
        )

    def test_covers_every_experiment(self, rows):
        experiments = {r.experiment for r in rows}
        assert experiments == {
            "workloads", "ccr-table", "fig4", "fig5", "fig6", "fig10",
            "q2b", "q3",
        }
        assert len(rows) >= 30

    def test_exact_rows_are_exact(self, rows):
        exact = {
            r.quantity: r for r in rows if r.rel_tol == 0.0
            and r.kind == "approx"
        }
        assert exact["1deg task count"].measured_value == 203
        assert exact["plates for the sky"].measured_value == 3900

    def test_table_renders(self, rows):
        text = comparison_table(rows)
        assert "paper" in text and "measured" in text
        assert text.count("yes") >= len(rows) - 2
        assert " NO" not in text

    def test_upper_bound_rows(self, rows):
        le_rows = [r for r in rows if r.kind == "le"]
        assert len(le_rows) == 2
        for r in le_rows:
            assert r.measured_value <= r.paper_value


class TestComparisonRow:
    def test_approx_semantics(self):
        row = ComparisonRow("x", "q", 100.0, 104.0, 0.05)
        assert row.ok
        assert row.deviation == pytest.approx(0.04)
        assert not ComparisonRow("x", "q", 100.0, 106.0, 0.05).ok

    def test_le_semantics(self):
        assert ComparisonRow("x", "q", 8.0, 5.9, 0.0, kind="le").ok
        assert not ComparisonRow("x", "q", 8.0, 8.1, 0.0, kind="le").ok
