"""ASCII chart tests."""

import pytest

from repro.experiments.plots import ascii_bars, ascii_chart


class TestChart:
    def test_basic_layout(self):
        text = ascii_chart(
            [1, 2, 4], {"a": [1.0, 2.0, 3.0]}, height=4, title="T"
        )
        lines = text.splitlines()
        assert lines[0] == "T"
        assert text.count("|") == 4  # one per row
        assert "* a" in lines[-1]
        # extremes land on the top and bottom rows
        assert "*" in lines[1]
        assert "*" in lines[4]

    def test_multiple_series_get_distinct_markers(self):
        text = ascii_chart(
            [1, 2], {"up": [1.0, 2.0], "down": [2.0, 1.0]}, height=4
        )
        assert "* up" in text
        assert "o down" in text

    def test_collisions_marked_plus(self):
        text = ascii_chart(
            [1], {"a": [1.0], "b": [1.0]}, height=3
        )
        # both series at the same point -> '+'
        assert "+" in text.splitlines()[2]

    def test_log_scale_spreads_small_values(self):
        series = {"v": [0.001, 1.0, 1000.0]}
        linear = ascii_chart([1, 2, 3], series, height=9)
        log = ascii_chart([1, 2, 3], series, height=9, log_y=True)
        # On a linear axis the two small values collapse onto one row;
        # on the log axis the middle value sits mid-chart.
        def row_of(text):
            for i, line in enumerate(text.splitlines()):
                if "|" in line and "*" in line:  # plot body only
                    yield i
        linear_rows = sorted(set(row_of(linear)))
        log_rows = sorted(set(row_of(log)))
        assert len(log_rows) == 3
        assert len(linear_rows) == 2

    def test_mismatched_series_rejected(self):
        with pytest.raises(ValueError):
            ascii_chart([1, 2], {"a": [1.0]})

    def test_empty_series_rejected(self):
        with pytest.raises(ValueError):
            ascii_chart([1], {})

    def test_log_needs_positive_value(self):
        with pytest.raises(ValueError):
            ascii_chart([1], {"a": [0.0]}, log_y=True)

    def test_min_height(self):
        with pytest.raises(ValueError):
            ascii_chart([1], {"a": [1.0]}, height=1)

    def test_constant_series(self):
        text = ascii_chart([1, 2, 3], {"flat": [5.0, 5.0, 5.0]}, height=3)
        body = [l for l in text.splitlines() if "|" in l]
        assert sum(l.count("*") for l in body) == 3


class TestBars:
    def test_proportional_bars(self):
        text = ascii_bars([("a", 1.0), ("b", 2.0)], width=10)
        lines = text.splitlines()
        assert lines[0].count("#") == 5
        assert lines[1].count("#") == 10

    def test_labels_aligned_and_values_printed(self):
        text = ascii_bars([("short", 1.0), ("longer-name", 0.5)], width=4)
        lines = text.splitlines()
        assert lines[0].index("|") == lines[1].index("|")
        assert "1.00" in lines[0]

    def test_unit_suffix(self):
        text = ascii_bars([("a", 2.0)], unit=" GB-h")
        assert "GB-h" in text

    def test_zero_peak(self):
        text = ascii_bars([("a", 0.0)], width=5)
        assert "#" not in text

    def test_validation(self):
        with pytest.raises(ValueError):
            ascii_bars([])
        with pytest.raises(ValueError):
            ascii_bars([("a", -1.0)])
        with pytest.raises(ValueError):
            ascii_bars([("a", 1.0)], width=0)


class TestCLIPlot:
    def test_q1_figure(self, capsys):
        from repro.cli import main

        assert main(["plot", "--degree", "1", "--figure", "q1"]) == 0
        out = capsys.readouterr().out
        assert "total $" in out
        assert "makespan (h)" in out

    def test_modes_figure(self, capsys):
        from repro.cli import main

        assert main(["plot", "--degree", "1", "--figure", "modes"]) == 0
        out = capsys.readouterr().out
        assert "Storage used" in out
        assert "remote-io" in out
