"""Direct tests for the ablation-study API."""

import pytest

from repro.experiments.ablations import (
    all_studies,
    billing_granularity_study,
    clustering_study,
    failure_study,
    fee_sensitivity_study,
    link_contention_study,
    montecarlo_failure_study,
    scheduler_study,
    storage_capacity_study,
    vm_overhead_study,
)
from repro.workflow.generators import fork_join_workflow


@pytest.fixture(scope="module")
def small():
    return fork_join_workflow(6, runtime=50.0, file_size=2e6)


class TestStudyShapes:
    def test_each_study_renders_and_carries_raw(self, small):
        studies = [
            billing_granularity_study(small, processors=(1, 4)),
            vm_overhead_study(small, processors=(1, 4)),
            fee_sensitivity_study(small),
            link_contention_study(small, processors=(1, 4)),
            failure_study(small, probabilities=(0.0, 0.2), n_processors=2),
            montecarlo_failure_study(
                small, probabilities=(0.0, 0.2), n_seeds=10, n_processors=2
            ),
            scheduler_study(small, n_processors=2),
            clustering_study(small, factors=(1, 3), overheads=(0.0, 5.0),
                             n_processors=2),
        ]
        for study in studies:
            assert study.raw
            text = study.as_table()
            assert study.title.split(" — ")[0] in text
            assert len(text.splitlines()) >= 2 + len(study.rows)

    def test_capacity_study_on_cleanup_safe_workflow(self, small):
        study = storage_capacity_study(
            small, fractions=(None, 1.0), processors=(2,)
        )
        assert len(study.raw) == 2
        assert study.raw[0][3] == pytest.approx(study.raw[1][3])

    def test_all_studies_count(self, montage1):
        studies = all_studies(montage1)
        assert [s.name for s in studies] == [
            "billing-granularity", "vm-overhead", "fee-sensitivity",
            "link-contention", "failures", "montecarlo", "scheduler",
            "storage-capacity", "clustering", "campaign-policies",
            "service-scale",
        ]
