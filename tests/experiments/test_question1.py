"""Question 1 (Figures 4-6) experiment tests."""

import pytest

from repro.experiments.question1 import run_question1
from repro.util.units import HOUR


@pytest.fixture(scope="module")
def fig4(montage1):
    return run_question1(montage1, processors=[1, 2, 8, 32, 128])


class TestFigure4Shape:
    def test_total_cost_increases_with_processors(self, fig4):
        totals = [r.total_cost for r in fig4.rows]
        assert totals == sorted(totals)

    def test_execution_time_decreases(self, fig4):
        spans = [r.makespan for r in fig4.rows]
        assert spans == sorted(spans, reverse=True)

    def test_cpu_dominates_total(self, fig4):
        # "The most dominant factor in the total cost is the CPU cost."
        for row in fig4.rows:
            assert row.cpu_cost > 0.5 * row.total_cost

    def test_transfer_cost_constant(self, fig4):
        xfers = {round(r.transfer_cost, 10) for r in fig4.rows}
        assert len(xfers) == 1

    def test_storage_negligible_and_decreasing(self, fig4):
        storages = [r.storage_cost for r in fig4.rows]
        assert storages == sorted(storages, reverse=True)
        assert all(s < 0.01 * r.total_cost
                   for s, r in zip(storages, fig4.rows))

    def test_cleanup_storage_cheaper(self, fig4):
        for row in fig4.rows:
            assert row.storage_cost_cleanup <= row.storage_cost

    def test_total_uses_no_cleanup_storage(self, fig4):
        # "The total costs ... are computed using the storage costs
        # without cleanup."
        for row in fig4.rows:
            assert row.total_cost == pytest.approx(
                row.cpu_cost + row.storage_cost + row.transfer_cost
            )


class TestFigure4Values:
    def test_one_processor_near_60_cents(self, fig4):
        row = fig4.row(1)
        assert row.total_cost == pytest.approx(0.60, abs=0.03)
        assert row.makespan == pytest.approx(5.5 * HOUR, rel=0.06)

    def test_128_processors_near_4_dollars(self, fig4):
        row = fig4.row(128)
        assert row.total_cost == pytest.approx(4.0, rel=0.2)

    def test_row_lookup_missing(self, fig4):
        with pytest.raises(KeyError):
            fig4.row(3)


class TestInterface:
    def test_accepts_degree_number(self):
        res = run_question1(1.0, processors=[1])
        assert res.workflow_name == "montage-1deg"
        assert len(res.rows) == 1

    def test_table_renders(self, fig4):
        table = fig4.as_table()
        assert "montage-1deg" in table
        assert "procs" in table
        assert "128" in table


class TestCSVExport:
    def test_csv_parses_back(self, fig4):
        import csv as csvmod
        import io

        rows = list(csvmod.DictReader(io.StringIO(fig4.as_csv())))
        assert len(rows) == len(fig4.rows)
        assert float(rows[0]["total_cost"]) == fig4.rows[0].total_cost
        assert int(rows[-1]["n_processors"]) == 128
