"""Question 3 (whole sky, store-vs-recompute) experiment tests."""

import pytest

from repro.experiments.question3 import run_question3


@pytest.fixture(scope="module")
def q3():
    return run_question3()


class TestWholeSky:
    def test_plate_count(self, q3):
        assert q3.n_plates == 3900

    def test_staged_total_near_paper(self, q3):
        # Paper: 3,900 x $8.88 = $34,632; ours lands within a few percent.
        assert q3.total_staged == pytest.approx(34632.0, rel=0.04)

    def test_prestaged_total_near_paper(self, q3):
        # Paper: 3,900 x $8.75 = $34,145 (paper text says $34,145).
        assert q3.total_prestaged == pytest.approx(34145.0, rel=0.02)

    def test_prestaged_cheaper(self, q3):
        assert q3.total_prestaged < q3.total_staged

    def test_scaling_consistency(self, q3):
        assert q3.total_staged == pytest.approx(
            q3.n_plates * q3.cost_per_plate_staged.total
        )


class TestStoreVsRecompute:
    def test_horizons_match_paper(self, q3):
        # Paper: 21.52 / 24.25 / 25.12 months.
        months = {r.degree: r.months for r in q3.store_rows}
        assert months[1.0] == pytest.approx(21.52, rel=0.01)
        assert months[2.0] == pytest.approx(24.25, rel=0.01)
        assert months[4.0] == pytest.approx(25.12, rel=0.01)

    def test_roughly_two_years_rule(self, q3):
        # "if it is likely that the same request would be repeated within
        # the next two years ... store the generated mosaic"
        for row in q3.store_rows:
            assert 18.0 < row.months < 30.0

    def test_cpu_costs_match_figure10(self, q3):
        cpu = {r.degree: r.cpu_cost for r in q3.store_rows}
        assert cpu[1.0] == pytest.approx(0.56, abs=0.01)
        assert cpu[2.0] == pytest.approx(2.03, abs=0.01)
        assert cpu[4.0] == pytest.approx(8.40, abs=0.01)

    def test_table_renders(self, q3):
        text = q3.as_table()
        assert "3,900" in text or "3900" in text
        assert "Store-vs-recompute" in text


class TestAlternativeSky:
    def test_six_degree_sky(self):
        res = run_question3(sky_degree=6.0, store_degrees=(1.0,))
        assert res.n_plates == 1734
        assert res.total_staged > 0
