"""Shared fixtures: the three paper workloads, built once per session."""

from __future__ import annotations

import pytest

from repro.montage import (
    montage_1_degree,
    montage_2_degree,
    montage_4_degree,
)


@pytest.fixture(scope="session")
def montage1():
    """The paper's Montage 1° workflow (203 tasks)."""
    return montage_1_degree()


@pytest.fixture(scope="session")
def montage2():
    """The paper's Montage 2° workflow (731 tasks)."""
    return montage_2_degree()


@pytest.fixture(scope="session")
def montage4():
    """The paper's Montage 4° workflow (3,027 tasks)."""
    return montage_4_degree()
