"""Cross-cutting property tests over arbitrary random DAGs.

These close the loop between independent implementations: the DAX
serializer, the static data-flow predictions, the cleanup analysis, the
analytic makespan bounds and the simulator must all agree on any valid
workflow the strategy can produce — including multi-output tasks, files
consumed across distant levels, zero-size files and explicit output marks.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.estimate import makespan_bounds
from repro.sim.executor import simulate
from repro.workflow.analysis import critical_path_length, max_parallelism
from repro.workflow.cleanup import cleanup_plan
from repro.workflow.dataflow import predict_transfers
from repro.workflow.dax import parse_dax, to_dax

from tests.strategies import workflows

pytestmark = pytest.mark.property

BW = 1.25e6


@settings(max_examples=60, deadline=None)
@given(wf=workflows())
def test_dax_roundtrip_arbitrary(wf):
    back = parse_dax(to_dax(wf))
    assert set(back.tasks) == set(wf.tasks)
    for tid, task in wf.tasks.items():
        other = back.task(tid)
        assert other.runtime == task.runtime  # repr round-trip is exact
        assert other.inputs == task.inputs
        assert other.outputs == task.outputs
    for name, f in wf.files.items():
        assert back.file(name).size_bytes == f.size_bytes
    assert sorted(back.output_files()) == sorted(wf.output_files())


@settings(max_examples=40, deadline=None)
@given(wf=workflows(), p=st.integers(1, 6))
def test_simulator_agrees_with_static_predictions(wf, p):
    for mode in ("regular", "cleanup", "remote-io"):
        pred = predict_transfers(wf, mode)
        r = simulate(wf, p, mode, bandwidth_bytes_per_sec=BW,
                     record_trace=False)
        assert r.bytes_in == pytest.approx(pred.bytes_in)
        assert r.bytes_out == pytest.approx(pred.bytes_out)
        assert r.n_transfers_in == pred.n_transfers_in
        assert r.n_transfers_out == pred.n_transfers_out


@settings(max_examples=40, deadline=None)
@given(wf=workflows(), p=st.integers(1, 6))
def test_makespan_bounds_hold_on_arbitrary_dags(wf, p):
    lower, upper = makespan_bounds(wf, p, BW)
    r = simulate(wf, p, "regular", bandwidth_bytes_per_sec=BW,
                 record_trace=False)
    assert lower - 1e-6 <= r.makespan <= upper + 1e-6


@settings(max_examples=40, deadline=None)
@given(wf=workflows())
def test_cleanup_plan_partitions_files(wf):
    """Every file is either protected or has a release set of real tasks."""
    plan = cleanup_plan(wf)
    for fname in wf.files:
        if fname in plan.protected:
            assert fname not in plan.release_after
        else:
            releasers = plan.release_after[fname]
            assert releasers
            assert releasers <= set(wf.tasks)
            consumers = wf.consumers_of(fname)
            if consumers:
                assert releasers == consumers
    assert plan.protected == frozenset(wf.output_files())


@settings(max_examples=40, deadline=None)
@given(wf=workflows(), p=st.integers(1, 6))
def test_cleanup_timing_equals_regular(wf, p):
    reg = simulate(wf, p, "regular", bandwidth_bytes_per_sec=BW,
                   record_trace=False)
    cln = simulate(wf, p, "cleanup", bandwidth_bytes_per_sec=BW,
                   record_trace=False)
    assert cln.makespan == pytest.approx(reg.makespan)
    assert cln.storage_byte_seconds <= reg.storage_byte_seconds + 1e-6


@settings(max_examples=40, deadline=None)
@given(wf=workflows())
def test_structure_invariants(wf):
    levels = wf.levels()
    # Levels strictly increase along every edge.
    for parent, child in wf.edges():
        assert levels[child] > levels[parent]
    # Critical path is at most total work, at least the longest task.
    cp = critical_path_length(wf)
    assert cp <= wf.total_runtime() + 1e-9
    assert cp >= max(t.runtime for t in wf.tasks.values()) - 1e-9
    # Parallelism is within [1, n_tasks].
    assert 1 <= max_parallelism(wf) <= len(wf)
    # File partition: inputs, outputs and intermediates cover all files.
    inputs = set(wf.input_files())
    outputs = set(wf.output_files())
    intermediates = set(wf.intermediate_files())
    assert inputs | outputs | intermediates == set(wf.files)
    assert not (inputs & intermediates)
    assert not (outputs & intermediates)
