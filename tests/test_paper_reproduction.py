"""The headline scoreboard: every number the paper reports, asserted.

One test per published quantity, with the tolerance stating how closely the
reproduction is expected to track the paper.  EXPERIMENTS.md mirrors this
file in prose.
"""

import pytest

from repro.core.costs import compute_cost
from repro.core.plans import ExecutionPlan
from repro.core.pricing import AWS_2008
from repro.experiments.question2b import run_question2b
from repro.experiments.question3 import run_question3
from repro.sim.executor import simulate
from repro.util.units import HOUR, MINUTE
from repro.workflow.analysis import max_parallelism


def _provisioned(wf, p):
    r = simulate(wf, p, "regular", record_trace=False)
    return r, compute_cost(r, AWS_2008, ExecutionPlan.provisioned(p))


def _on_demand(wf, mode="regular"):
    p = max_parallelism(wf)
    r = simulate(wf, p, mode, record_trace=False)
    return r, compute_cost(r, AWS_2008, ExecutionPlan.on_demand(p, mode))


class TestSection5Workloads:
    def test_task_counts(self, montage1, montage2, montage4):
        """'203 / 731 / 3,027 application tasks.'"""
        assert (len(montage1), len(montage2), len(montage4)) == (
            203, 731, 3027,
        )


class TestFigure4:  # Montage 1 degree
    def test_1proc_cost_60_cents(self, montage1):
        _, cost = _provisioned(montage1, 1)
        assert cost.total == pytest.approx(0.60, abs=0.03)

    def test_1proc_time_5_5_hours(self, montage1):
        r, _ = _provisioned(montage1, 1)
        assert r.makespan == pytest.approx(5.5 * HOUR, rel=0.06)

    def test_128proc_cost_almost_4_dollars(self, montage1):
        _, cost = _provisioned(montage1, 128)
        assert cost.total == pytest.approx(4.0, rel=0.2)

    def test_128proc_time_18_minutes(self, montage1):
        r, _ = _provisioned(montage1, 128)
        assert r.makespan == pytest.approx(18 * MINUTE, rel=0.2)


class TestFigure5:  # Montage 2 degrees
    def test_1proc_cost_2_25(self, montage2):
        _, cost = _provisioned(montage2, 1)
        assert cost.total == pytest.approx(2.25, abs=0.05)

    def test_1proc_time_20_5_hours(self, montage2):
        r, _ = _provisioned(montage2, 1)
        assert r.makespan == pytest.approx(20.5 * HOUR, rel=0.03)

    def test_128proc_cost_below_8(self, montage2):
        _, cost = _provisioned(montage2, 128)
        assert cost.total < 8.0

    def test_128proc_time_below_40_minutes(self, montage2):
        r, _ = _provisioned(montage2, 128)
        assert r.makespan < 40 * MINUTE


class TestFigure6:  # Montage 4 degrees
    def test_1proc_cost_9_dollars(self, montage4):
        _, cost = _provisioned(montage4, 1)
        assert cost.total == pytest.approx(9.0, rel=0.04)

    def test_1proc_time_85_hours(self, montage4):
        r, _ = _provisioned(montage4, 1)
        assert r.makespan == pytest.approx(85 * HOUR, rel=0.02)

    def test_16proc_compromise_9_25(self, montage4):
        """'16 processors ... approximately 5.5 hours with a cost of
        $9.25' (we land at ~5.9 h / ~$10.1)."""
        r, cost = _provisioned(montage4, 16)
        assert r.makespan == pytest.approx(5.5 * HOUR, rel=0.1)
        assert cost.total == pytest.approx(9.25, rel=0.12)

    def test_128proc_cost_near_13_92(self, montage4):
        """Paper: $13.92 / ~1 h.  Our measured ~$17.3 / 1.3 h — the
        paper's figure is internally optimistic: staging out the 2.229 GB
        mosaic alone takes 0.5 h at 10 Mbps on top of a 0.66 h compute
        lower bound.  We assert the same order and the provisioned>on-demand
        conclusion it supports."""
        r, cost = _provisioned(montage4, 128)
        assert cost.total == pytest.approx(13.92, rel=0.30)
        assert r.makespan == pytest.approx(1.0 * HOUR, rel=0.35)


class TestFigure10:  # CPU vs data-management cost, on-demand
    @pytest.mark.parametrize(
        "fixture,cpu", [("montage1", 0.56), ("montage2", 2.03), ("montage4", 8.40)]
    )
    def test_cpu_costs(self, fixture, cpu, request):
        wf = request.getfixturevalue(fixture)
        _, cost = _on_demand(wf)
        assert cost.cpu_cost == pytest.approx(cpu, abs=0.01)

    def test_2deg_staged_total_2_22(self, montage2):
        _, cost = _on_demand(montage2)
        assert cost.total == pytest.approx(2.22, abs=0.04)

    def test_2deg_prestaged_total_2_12(self, montage2):
        _, cost = _on_demand(montage2)
        assert cost.total - cost.transfer_in_cost == pytest.approx(
            2.12, abs=0.03
        )

    def test_4deg_staged_total_8_88(self, montage4):
        _, cost = _on_demand(montage4)
        # Ours $9.06: the paper's own $8.88 is inconsistent with its CCR
        # table (see DESIGN.md §8); same order either way.
        assert cost.total == pytest.approx(8.88, rel=0.04)

    def test_4deg_prestaged_total_8_75(self, montage4):
        _, cost = _on_demand(montage4)
        assert cost.total - cost.transfer_in_cost == pytest.approx(
            8.75, rel=0.01
        )

    def test_on_demand_cheaper_than_128_provisioned(self, montage4):
        """'$13.92 in the provisioned case, whereas the workflow which is
        charged only for the resources used is only $8.89.'"""
        _, prov = _provisioned(montage4, 128)
        _, ond = _on_demand(montage4)
        assert ond.total < prov.total
        assert ond.total == pytest.approx(8.89, rel=0.04)


class TestCCRTable:
    @pytest.mark.parametrize(
        "fixture,ccr", [("montage1", 0.053), ("montage2", 0.053), ("montage4", 0.045)]
    )
    def test_ccr(self, fixture, ccr, request):
        from repro.workflow.analysis import communication_to_computation_ratio

        wf = request.getfixturevalue(fixture)
        assert communication_to_computation_ratio(wf) == pytest.approx(
            ccr, abs=1e-6
        )


class TestQuestion2b:
    def test_archive_figures(self, montage2):
        res = run_question2b(montage2)
        assert res.monthly_storage_cost == pytest.approx(1800.0)
        assert res.economics.initial_transfer_cost == pytest.approx(1200.0)
        assert res.cost_staged == pytest.approx(2.22, abs=0.04)
        assert res.cost_prestaged == pytest.approx(2.12, abs=0.03)
        # Paper rounds the saving to $0.10 -> 18,000; exact -> ~21,000.
        assert res.break_even_requests_per_month == pytest.approx(
            18000, rel=0.20
        )


class TestQuestion3:
    def test_whole_sky(self):
        res = run_question3()
        assert res.n_plates == 3900
        assert res.total_staged == pytest.approx(34632.0, rel=0.04)
        assert res.total_prestaged == pytest.approx(34145.0, rel=0.02)

    def test_store_vs_recompute(self):
        res = run_question3()
        months = {r.degree: round(r.months, 2) for r in res.store_rows}
        assert months[1.0] == pytest.approx(21.52, abs=0.2)
        assert months[2.0] == pytest.approx(24.25, abs=0.2)
        assert months[4.0] == pytest.approx(25.12, abs=0.2)
