"""Plan-selection tests, including the paper's 16-processor compromise."""

import pytest

from repro.provisioning.optimizer import (
    best_weighted,
    cheapest_within_deadline,
    fastest_within_budget,
)
from repro.provisioning.provisioner import candidate_plans
from repro.util.units import HOUR
from repro.workflow.generators import fork_join_workflow


@pytest.fixture(scope="module")
def candidates():
    wf = fork_join_workflow(32, runtime=200.0, file_size=2e6)
    return candidate_plans(wf, processors=[1, 2, 4, 8, 16, 32])


class TestDeadline:
    def test_picks_cheapest_feasible(self, candidates):
        slowest = max(c.makespan for c in candidates)
        decision = cheapest_within_deadline(candidates, slowest + 1.0)
        assert decision.feasible
        # Everything is feasible, so the overall cheapest wins.
        assert decision.chosen.total_cost == min(
            c.total_cost for c in candidates
        )

    def test_tight_deadline_forces_more_processors(self, candidates):
        fastest = min(c.makespan for c in candidates)
        decision = cheapest_within_deadline(candidates, fastest + 1.0)
        assert decision.feasible
        assert decision.n_processors == max(
            c.n_processors for c in candidates
        )

    def test_infeasible_deadline_best_effort(self, candidates):
        decision = cheapest_within_deadline(candidates, 1e-3)
        assert not decision.feasible
        assert decision.chosen.makespan == min(c.makespan for c in candidates)

    def test_invalid_deadline(self, candidates):
        with pytest.raises(ValueError):
            cheapest_within_deadline(candidates, 0.0)

    def test_empty_candidates(self):
        with pytest.raises(ValueError):
            cheapest_within_deadline([], 10.0)


class TestBudget:
    def test_picks_fastest_affordable(self, candidates):
        budget = max(c.total_cost for c in candidates)
        decision = fastest_within_budget(candidates, budget)
        assert decision.feasible
        assert decision.chosen.makespan == min(c.makespan for c in candidates)

    def test_small_budget_limits_processors(self, candidates):
        budget = min(c.total_cost for c in candidates) * 1.001
        decision = fastest_within_budget(candidates, budget)
        assert decision.feasible
        assert decision.chosen.total_cost <= budget

    def test_infeasible_budget_best_effort(self, candidates):
        decision = fastest_within_budget(candidates, 1e-9)
        assert not decision.feasible
        assert decision.chosen.total_cost == min(
            c.total_cost for c in candidates
        )


class TestWeighted:
    def test_extremes(self, candidates):
        cheapest = best_weighted(candidates, cost_weight=1.0)
        fastest = best_weighted(candidates, cost_weight=0.0)
        assert cheapest.chosen.total_cost == min(
            c.total_cost for c in candidates
        )
        assert fastest.chosen.makespan == min(c.makespan for c in candidates)

    def test_invalid_weight(self, candidates):
        with pytest.raises(ValueError):
            best_weighted(candidates, cost_weight=1.5)


class TestPaperCompromise:
    def test_16_processors_for_montage4_under_6h(self, montage4):
        """The paper picks 16 processors for the 4° workflow to get ~5.5 h
        at $9.25; our optimizer makes the same call for a 6-hour deadline.
        """
        cands = candidate_plans(montage4, processors=[1, 4, 16, 64, 128])
        decision = cheapest_within_deadline(cands, 6.0 * HOUR)
        assert decision.feasible
        assert decision.n_processors == 16
        assert decision.chosen.total_cost == pytest.approx(9.25, rel=0.12)
