"""Multi-provider plan-advisor tests."""

import pytest

from repro.core.pricing import AWS_2008, STORAGE_HEAVY, TRANSFER_HEAVY
from repro.provisioning.advisor import advise_plan
from repro.util.units import HOUR


PROVIDERS = {
    "aws": AWS_2008,
    "storage-heavy": STORAGE_HEAVY,
    "transfer-heavy": TRANSFER_HEAVY,
}


class TestAdvisor:
    @pytest.fixture(scope="class")
    def rec(self, montage1):
        return advise_plan(
            montage1,
            providers=PROVIDERS,
            deadline_seconds=2.0 * HOUR,
            processors=[1, 4, 16, 64],
            modes=("regular", "cleanup"),
        )

    def test_option_space_size(self, rec):
        # 2 modes x 4 pools x 3 providers.
        assert len(rec.options) == 24

    def test_chosen_meets_deadline_and_is_cheapest(self, rec):
        assert rec.feasible
        assert rec.chosen.makespan <= 2.0 * HOUR
        feasible = [o for o in rec.options if o.makespan <= 2.0 * HOUR]
        assert rec.chosen.total_cost == min(o.total_cost for o in feasible)

    def test_cheapest_overall_without_constraints(self, montage1):
        rec = advise_plan(
            montage1, providers=PROVIDERS, processors=[1, 16],
            modes=("cleanup",),
        )
        assert rec.feasible
        assert rec.chosen.total_cost == min(
            o.total_cost for o in rec.options
        )
        assert "cheapest overall" in rec.criterion

    def test_budget_only_picks_fastest_affordable(self, montage1):
        rec = advise_plan(
            montage1,
            deadline_seconds=None,
            budget_dollars=1.0,
            processors=[1, 4, 16, 64],
            modes=("regular",),
        )
        assert rec.feasible
        assert rec.chosen.total_cost <= 1.0
        affordable = [o for o in rec.options if o.total_cost <= 1.0]
        assert rec.chosen.makespan == min(o.makespan for o in affordable)

    def test_infeasible_constraints(self, montage1):
        rec = advise_plan(
            montage1, deadline_seconds=1.0, processors=[1, 2],
            modes=("regular",),
        )
        assert not rec.feasible
        assert rec.chosen is None
        assert rec.options  # the explored space is still reported

    def test_provider_choice_matters(self, montage1):
        """Under a transfer-heavy provider the advisor avoids remote I/O."""
        rec = advise_plan(
            montage1,
            providers={"transfer-heavy": TRANSFER_HEAVY},
            processors=[8],
            modes=("remote-io", "regular"),
        )
        assert rec.chosen.data_mode == "regular"

    def test_default_ladder_capped_by_parallelism(self, montage1):
        rec = advise_plan(montage1, modes=("cleanup",))
        pools = sorted({o.n_processors for o in rec.options})
        assert pools[0] == 1
        assert pools[-1] <= 118  # montage-1deg max parallelism

    def test_validation(self, montage1):
        with pytest.raises(ValueError):
            advise_plan(montage1, providers={})
        with pytest.raises(ValueError):
            advise_plan(montage1, deadline_seconds=0.0)
        with pytest.raises(ValueError):
            advise_plan(montage1, budget_dollars=-1.0)
