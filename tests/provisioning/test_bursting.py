"""Cloud-bursting policy tests."""

import pytest

from repro.provisioning.bursting import simulate_bursting
from repro.service.arrivals import ServiceRequest, request_stream, uniform_arrivals
from repro.util.units import HOUR


@pytest.fixture(scope="module")
def calm_stream(montage1):
    """Requests arriving far apart: a small cluster keeps up."""
    return request_stream(uniform_arrivals(4, 6 * HOUR), [montage1])


@pytest.fixture(scope="module")
def storm_stream(montage1):
    """A burst of simultaneous requests (the paper's 'sporadic overload')."""
    return [ServiceRequest(f"r{i}", montage1, 0.0) for i in range(6)]


class TestRouting:
    def test_calm_traffic_stays_local(self, calm_stream):
        out = simulate_bursting(
            calm_stream, local_processors=8, objective_seconds=2 * HOUR
        )
        assert out.n_burst == 0
        assert out.n_local == 4
        assert out.cloud_cost.total == 0.0

    def test_storm_bursts_overflow(self, storm_stream):
        out = simulate_bursting(
            storm_stream, local_processors=4, objective_seconds=2 * HOUR
        )
        assert out.n_burst > 0
        assert out.n_local > 0  # the cluster still takes the head
        assert out.cloud_cost.total > 0
        # The first arrival is always served locally (empty queue).
        assert not out.decisions[0].burst

    def test_bigger_cluster_bursts_less(self, storm_stream):
        small = simulate_bursting(storm_stream, 2, 2 * HOUR)
        big = simulate_bursting(storm_stream, 32, 2 * HOUR)
        assert big.n_burst <= small.n_burst
        assert big.cloud_cost.total <= small.cloud_cost.total

    def test_tighter_objective_bursts_more(self, storm_stream):
        loose = simulate_bursting(storm_stream, 4, 8 * HOUR)
        tight = simulate_bursting(storm_stream, 4, 1 * HOUR)
        assert tight.n_burst >= loose.n_burst

    def test_decisions_cover_all_requests(self, storm_stream):
        out = simulate_bursting(storm_stream, 4, 2 * HOUR)
        assert len(out.decisions) == len(storm_stream)
        assert out.n_local + out.n_burst == len(storm_stream)
        assert len(out.local_outcomes) == out.n_local
        assert len(out.cloud_outcomes) == out.n_burst

    def test_cloud_cost_matches_per_burst_pricing(self, storm_stream):
        out = simulate_bursting(
            storm_stream, 2, 1 * HOUR, cloud_processors_per_burst=16
        )
        if out.n_burst:
            # All bursts run the same workflow on the same plan.
            per_burst = out.cloud_cost.total / out.n_burst
            assert per_burst == pytest.approx(
                out.cloud_outcomes[0].result.makespan * 16 / 3600 * 0.1
                + out.cloud_cost.data_management_cost / out.n_burst,
                rel=1e-6,
            )

    def test_bursting_protects_response_times(self, storm_stream):
        """With bursting, the storm's worst response beats local-only."""
        burst = simulate_bursting(storm_stream, 2, 2 * HOUR)
        local_only = simulate_bursting(storm_stream, 2, 1e12)  # never burst
        assert local_only.n_burst == 0
        assert burst.max_response_time() < local_only.max_response_time()


class TestValidation:
    def test_invalid_args(self, calm_stream):
        with pytest.raises(ValueError):
            simulate_bursting(calm_stream, 0, 10.0)
        with pytest.raises(ValueError):
            simulate_bursting(calm_stream, 1, 0.0)
