"""Provisioning-candidate enumeration tests."""

import pytest

from repro.provisioning.provisioner import candidate_plans
from repro.workflow.analysis import max_parallelism
from repro.workflow.generators import chain_workflow, fork_join_workflow


class TestCandidates:
    def test_default_ladder_capped_at_parallelism(self):
        wf = fork_join_workflow(6, runtime=50.0)
        cands = candidate_plans(wf)
        # max parallelism 6 -> ladder 1,2,4 plus the first count >= 6 (8).
        assert [c.n_processors for c in cands] == [1, 2, 4, 8]

    def test_chain_collapses_to_single_candidate_plus_one(self):
        cands = candidate_plans(chain_workflow(5))
        assert [c.n_processors for c in cands] == [1]

    def test_uncapped_keeps_ladder(self):
        wf = fork_join_workflow(6, runtime=50.0)
        cands = candidate_plans(
            wf, processors=[1, 4, 16, 64], cap_at_max_parallelism=False
        )
        assert [c.n_processors for c in cands] == [1, 4, 16, 64]

    def test_candidates_carry_plan_and_cost(self):
        wf = fork_join_workflow(4, runtime=50.0)
        for cand in candidate_plans(wf, processors=[1, 2]):
            assert cand.plan.n_processors == cand.n_processors
            assert cand.total_cost == pytest.approx(cand.cost.total)
            assert cand.makespan == cand.result.makespan

    def test_duplicate_processor_counts_deduplicated(self):
        wf = fork_join_workflow(4, runtime=50.0)
        cands = candidate_plans(wf, processors=[2, 1, 2, 1])
        assert [c.n_processors for c in cands] == [1, 2]

    def test_respects_data_mode(self):
        wf = fork_join_workflow(4, runtime=50.0)
        cands = candidate_plans(wf, processors=[2], data_mode="cleanup")
        assert cands[0].result.data_mode == "cleanup"
        assert cands[0].plan.data_mode.value == "cleanup"

    def test_montage_includes_full_parallelism_point(self, montage1):
        cands = candidate_plans(montage1)
        ps = [c.n_processors for c in cands]
        assert ps[:8] == [1, 2, 4, 8, 16, 32, 64, 128]
        assert max_parallelism(montage1) == 118
