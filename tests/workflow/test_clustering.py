"""Horizontal task-clustering tests."""

import pytest

from repro.sim.executor import simulate
from repro.workflow.analysis import (
    communication_to_computation_ratio,
    level_widths,
    max_parallelism,
)
from repro.workflow.clustering import cluster_workflow
from repro.workflow.dataflow import predict_transfers
from repro.workflow.generators import chain_workflow, fork_join_workflow


class TestStructure:
    def test_montage_cluster_counts(self, montage1):
        c8 = cluster_workflow(montage1, 8)
        counts = c8.count_by_transformation()
        assert counts["mProject"] == 5      # ceil(40 / 8)
        assert counts["mDiffFit"] == 15     # ceil(118 / 8)
        assert counts["mBackground"] == 5
        # Singletons untouched, original ids preserved.
        assert counts["mAdd"] == 1
        assert "mAdd" in c8
        assert len(c8) == 5 + 15 + 2 + 5 + 3

    def test_factor_one_is_identity(self, montage1):
        c1 = cluster_workflow(montage1, 1)
        assert set(c1.tasks) == set(montage1.tasks)
        assert c1.total_runtime() == pytest.approx(montage1.total_runtime())

    def test_runtime_and_files_preserved(self, montage1):
        c8 = cluster_workflow(montage1, 8)
        assert c8.total_runtime() == pytest.approx(montage1.total_runtime())
        assert set(c8.files) == set(montage1.files)
        assert communication_to_computation_ratio(c8) == pytest.approx(
            communication_to_computation_ratio(montage1)
        )
        assert sorted(c8.output_files()) == sorted(montage1.output_files())

    def test_parallelism_shrinks(self, montage1):
        c8 = cluster_workflow(montage1, 8)
        assert max_parallelism(c8) == 15  # the diff wave's cluster count
        assert c8.depth() == montage1.depth()

    def test_regular_transfers_unchanged(self, montage1):
        c8 = cluster_workflow(montage1, 8)
        before = predict_transfers(montage1, "regular")
        after = predict_transfers(c8, "regular")
        assert after.bytes_in == pytest.approx(before.bytes_in)
        assert after.bytes_out == pytest.approx(before.bytes_out)

    def test_remote_transfers_shrink(self, montage1):
        """Clustering dedups shared inputs within a cluster (e.g. the
        template header is pulled once per mProject *cluster*)."""
        c8 = cluster_workflow(montage1, 8)
        before = predict_transfers(montage1, "remote-io")
        after = predict_transfers(c8, "remote-io")
        assert after.bytes_in < before.bytes_in
        assert after.n_transfers_in < before.n_transfers_in

    def test_shared_level_inputs_deduplicated(self, montage1):
        c8 = cluster_workflow(montage1, 8)
        cluster = c8.task("cluster_mProject_l1_0000")
        assert cluster.inputs.count("template.hdr") == 1
        assert len(cluster.outputs) == 16  # 8 members x 2 outputs

    def test_chain_unchanged(self):
        wf = chain_workflow(5)
        c = cluster_workflow(wf, 4)
        assert set(c.tasks) == set(wf.tasks)  # one task per level

    def test_invalid_factor(self, montage1):
        with pytest.raises(ValueError):
            cluster_workflow(montage1, 0)


class TestOverheadInteraction:
    def test_clustering_amortizes_overhead(self, montage1):
        """With 10 s/job overhead at 8 processors, clustering by 5 (which
        packs the 40-wide waves perfectly onto 8 processors) wins; without
        overhead it costs nothing; a mispacked factor of 8 (5 clusters on
        8 processors) loses despite the overhead savings."""
        c5 = cluster_workflow(montage1, 5)
        plain_oh = simulate(
            montage1, 8, task_overhead_seconds=10.0, record_trace=False
        )
        clustered_oh = simulate(
            c5, 8, task_overhead_seconds=10.0, record_trace=False
        )
        assert clustered_oh.makespan < plain_oh.makespan
        plain = simulate(montage1, 8, record_trace=False)
        clustered = simulate(c5, 8, record_trace=False)
        assert clustered.makespan == pytest.approx(plain.makespan)
        mispacked = simulate(
            cluster_workflow(montage1, 8), 8,
            task_overhead_seconds=10.0, record_trace=False,
        )
        assert mispacked.makespan > plain_oh.makespan

    def test_overhead_timing_exact(self):
        wf = fork_join_workflow(4, runtime=10.0, file_size=1.25e6)
        r = simulate(
            wf, 4, bandwidth_bytes_per_sec=1.25e6,
            task_overhead_seconds=5.0, record_trace=False,
        )
        # inputs at 1 s; workers [1, 16] (5 overhead + 10 run); join
        # [16, 31]; stage-out 1 s.
        assert r.makespan == pytest.approx(32.0)
        # Overhead occupies processors but is not billed compute.
        assert r.compute_seconds == pytest.approx(50.0)
        assert r.cpu_busy_seconds == pytest.approx(50.0 + 5 * 5.0)

    def test_negative_overhead_rejected(self, montage1):
        with pytest.raises(ValueError):
            simulate(montage1, 1, task_overhead_seconds=-1.0)
