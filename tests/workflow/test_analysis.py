"""Workflow analysis tests: CCR, critical path, parallelism, stats."""

import pytest

from repro.util.units import MBPS
from repro.workflow.analysis import (
    communication_to_computation_ratio,
    critical_path,
    critical_path_length,
    data_footprint,
    level_widths,
    max_parallelism,
    workflow_stats,
)
from repro.workflow.dag import FileSpec, Task, Workflow, build_workflow
from repro.workflow.generators import (
    chain_workflow,
    diamond_workflow,
    example_figure3_workflow,
    fork_join_workflow,
)


class TestCCR:
    def test_definition(self):
        # 3 tasks x 100 s; 4 files x 1.25 MB; B = 10 Mbps = 1.25 MB/s.
        wf = chain_workflow(3, runtime=100.0, file_size=1.25e6)
        # sum sizes / B = 4 s of transfer per 300 s of compute.
        assert communication_to_computation_ratio(
            wf, 10 * MBPS
        ) == pytest.approx(4.0 / 300.0)

    def test_scales_inversely_with_bandwidth(self):
        wf = chain_workflow(3)
        slow = communication_to_computation_ratio(wf, 1 * MBPS)
        fast = communication_to_computation_ratio(wf, 10 * MBPS)
        assert slow == pytest.approx(10 * fast)

    def test_zero_bandwidth_rejected(self):
        with pytest.raises(ValueError):
            communication_to_computation_ratio(chain_workflow(1), 0.0)

    def test_zero_runtime_rejected(self):
        wf = build_workflow(
            "z",
            [FileSpec("a", 1.0), FileSpec("b", 1.0)],
            [Task("t", 0.0, inputs=("a",), outputs=("b",))],
        )
        with pytest.raises(ValueError):
            communication_to_computation_ratio(wf)


class TestCriticalPath:
    def test_chain_is_whole_runtime(self):
        wf = chain_workflow(5, runtime=10.0)
        length, path = critical_path(wf)
        assert length == pytest.approx(50.0)
        assert path == [f"t{i}" for i in range(5)]

    def test_fork_join(self):
        wf = fork_join_workflow(8, runtime=10.0)
        assert critical_path_length(wf) == pytest.approx(20.0)

    def test_skewed_runtimes_pick_longest_branch(self):
        wf = Workflow("skew")
        for name in ("a", "b", "c", "d"):
            wf.add_file(FileSpec(name, 1.0))
        wf.add_task(Task("root", 1.0, inputs=("a",), outputs=("b", "c")))
        wf.add_task(Task("short", 1.0, inputs=("b",), outputs=()))
        wf.add_task(Task("long", 100.0, inputs=("c",), outputs=("d",)))
        length, path = critical_path(wf)
        assert length == pytest.approx(101.0)
        assert path == ["root", "long"]

    def test_empty_workflow(self):
        assert critical_path(Workflow("empty")) == (0.0, [])


class TestParallelism:
    def test_chain_is_serial(self):
        assert max_parallelism(chain_workflow(10)) == 1

    def test_fork_join_width(self):
        assert max_parallelism(fork_join_workflow(13)) == 13

    def test_figure3(self):
        # Levels 1/2/3/4 have 1/2/3/1 tasks; with equal runtimes the free
        # schedule runs whole levels together.
        assert max_parallelism(example_figure3_workflow()) == 3

    def test_empty(self):
        assert max_parallelism(Workflow("empty")) == 0

    def test_skew_can_beat_level_width(self):
        # Two chains of different task lengths overlap across levels.
        wf = Workflow("skew")
        for name in ("a1", "a2", "b1", "b2", "mid"):
            wf.add_file(FileSpec(name, 1.0))
        wf.add_task(Task("fast", 1.0, inputs=("a1",), outputs=("mid",)))
        wf.add_task(Task("fast2", 10.0, inputs=("mid",), outputs=("a2",)))
        wf.add_task(Task("slow", 5.0, inputs=("b1",), outputs=("b2",)))
        # free schedule: fast [0,1], fast2 [1,11], slow [0,5]
        assert max_parallelism(wf) == 2
        assert level_widths(wf) == {1: 2, 2: 1}


class TestStats:
    def test_diamond_stats(self):
        wf = diamond_workflow(runtime=10.0, file_size=2e6)
        st = workflow_stats(wf)
        assert st.n_tasks == 4
        assert st.n_files == 6
        assert st.depth == 3
        assert st.total_runtime == pytest.approx(40.0)
        assert st.critical_path == pytest.approx(30.0)
        assert st.max_parallelism == 2
        assert st.footprint_bytes == pytest.approx(12e6)
        assert st.input_bytes == pytest.approx(2e6)
        assert st.output_bytes == pytest.approx(2e6)
        assert st.ccr == pytest.approx(data_footprint(wf) / (1.25e6 * 40.0))
