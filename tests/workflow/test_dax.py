"""DAX XML serialization tests."""

import pytest

from repro.workflow.dag import WorkflowValidationError
from repro.workflow.dax import parse_dax, read_dax_file, to_dax, write_dax_file
from repro.workflow.generators import (
    example_figure3_workflow,
    fork_join_workflow,
    random_layered_workflow,
)


def _assert_equivalent(a, b):
    assert a.name == b.name
    assert set(a.tasks) == set(b.tasks)
    for tid, task in a.tasks.items():
        other = b.task(tid)
        assert other.runtime == pytest.approx(task.runtime)
        assert other.inputs == task.inputs
        assert other.outputs == task.outputs
        assert other.transformation == task.transformation
    assert set(a.files) == set(b.files)
    for name, f in a.files.items():
        assert b.file(name).size_bytes == pytest.approx(f.size_bytes)
    assert sorted(a.output_files()) == sorted(b.output_files())


class TestRoundTrip:
    @pytest.mark.parametrize(
        "wf_factory",
        [
            example_figure3_workflow,
            lambda: fork_join_workflow(5),
            lambda: random_layered_workflow(3, 4, seed=7),
        ],
    )
    def test_roundtrip(self, wf_factory):
        wf = wf_factory()
        _assert_equivalent(wf, parse_dax(to_dax(wf)))

    def test_explicit_output_marks_survive(self):
        wf = example_figure3_workflow()
        parsed = parse_dax(to_dax(wf))
        # h is consumed by task6 yet must still be a net output.
        assert "h" in parsed.output_files()

    def test_file_roundtrip(self, tmp_path):
        wf = fork_join_workflow(3)
        path = write_dax_file(wf, tmp_path / "wf.xml")
        _assert_equivalent(wf, read_dax_file(path))

    def test_montage_roundtrip(self, montage1):
        _assert_equivalent(montage1, parse_dax(to_dax(montage1)))

    def test_exact_float_sizes_preserved(self):
        wf = random_layered_workflow(2, 2, seed=3)
        parsed = parse_dax(to_dax(wf))
        for name, f in wf.files.items():
            assert parsed.file(name).size_bytes == f.size_bytes  # bit-exact


class TestMalformedInput:
    def test_not_xml(self):
        with pytest.raises(WorkflowValidationError, match="malformed"):
            parse_dax("this is not xml")

    def test_wrong_root(self):
        with pytest.raises(WorkflowValidationError, match="adag"):
            parse_dax("<workflow/>")

    def test_job_missing_id(self):
        with pytest.raises(WorkflowValidationError, match="missing id"):
            parse_dax('<adag><job runtime="1"/></adag>')

    def test_job_missing_runtime(self):
        with pytest.raises(WorkflowValidationError, match="runtime"):
            parse_dax('<adag><job id="t"/></adag>')

    def test_uses_missing_size(self):
        with pytest.raises(WorkflowValidationError, match="size"):
            parse_dax(
                '<adag><job id="t" runtime="1">'
                '<uses file="a" link="input"/></job></adag>'
            )

    def test_uses_bad_link(self):
        with pytest.raises(WorkflowValidationError, match="malformed"):
            parse_dax(
                '<adag><job id="t" runtime="1">'
                '<uses file="a" link="sideways" size="1"/></job></adag>'
            )

    def test_output_missing_file(self):
        with pytest.raises(WorkflowValidationError, match="output"):
            parse_dax("<adag><output/></adag>")

    def test_cyclic_dax_rejected(self):
        text = (
            "<adag>"
            '<job id="t1" runtime="1">'
            '<uses file="a" link="input" size="1"/>'
            '<uses file="b" link="output" size="1"/></job>'
            '<job id="t2" runtime="1">'
            '<uses file="b" link="input" size="1"/>'
            '<uses file="a" link="output" size="1"/></job>'
            "</adag>"
        )
        with pytest.raises(WorkflowValidationError, match="cycle"):
            parse_dax(text)
