"""Core DAG model tests."""

import pytest

from repro.workflow.dag import (
    FileSpec,
    Task,
    Workflow,
    WorkflowValidationError,
    build_workflow,
)
from repro.workflow.generators import example_figure3_workflow


class TestFileSpec:
    def test_rejects_negative_size(self):
        with pytest.raises(WorkflowValidationError):
            FileSpec("f", -1.0)

    def test_rejects_empty_name(self):
        with pytest.raises(WorkflowValidationError):
            FileSpec("", 1.0)

    def test_with_size(self):
        f = FileSpec("f", 1.0).with_size(2.0)
        assert f.size_bytes == 2.0
        assert f.name == "f"


class TestTask:
    def test_rejects_negative_runtime(self):
        with pytest.raises(WorkflowValidationError):
            Task("t", -1.0)

    def test_rejects_duplicate_inputs(self):
        with pytest.raises(WorkflowValidationError):
            Task("t", 1.0, inputs=("a", "a"))

    def test_rejects_duplicate_outputs(self):
        with pytest.raises(WorkflowValidationError):
            Task("t", 1.0, outputs=("a", "a"))

    def test_rejects_input_output_overlap(self):
        with pytest.raises(WorkflowValidationError):
            Task("t", 1.0, inputs=("a",), outputs=("a",))


class TestConstruction:
    def test_duplicate_file_same_size_is_noop(self):
        wf = Workflow()
        wf.add_file(FileSpec("a", 5.0))
        wf.add_file(FileSpec("a", 5.0))
        assert len(wf.files) == 1

    def test_duplicate_file_different_size_rejected(self):
        wf = Workflow()
        wf.add_file(FileSpec("a", 5.0))
        with pytest.raises(WorkflowValidationError):
            wf.add_file(FileSpec("a", 6.0))

    def test_duplicate_task_rejected(self):
        wf = Workflow()
        wf.add_file(FileSpec("a", 1.0))
        wf.add_task(Task("t", 1.0, inputs=("a",)))
        with pytest.raises(WorkflowValidationError):
            wf.add_task(Task("t", 1.0, inputs=("a",)))

    def test_unregistered_file_rejected(self):
        wf = Workflow()
        with pytest.raises(WorkflowValidationError):
            wf.add_task(Task("t", 1.0, inputs=("ghost",)))

    def test_two_producers_rejected(self):
        wf = Workflow()
        wf.add_file(FileSpec("a", 1.0))
        wf.add_file(FileSpec("b", 1.0))
        wf.add_task(Task("t1", 1.0, inputs=("a",), outputs=("b",)))
        with pytest.raises(WorkflowValidationError):
            wf.add_task(Task("t2", 1.0, inputs=("a",), outputs=("b",)))

    def test_mark_output_unknown_file(self):
        wf = Workflow()
        with pytest.raises(WorkflowValidationError):
            wf.mark_output("ghost")

    def test_cycle_detected(self):
        wf = Workflow()
        for name in ("a", "b"):
            wf.add_file(FileSpec(name, 1.0))
        wf.add_task(Task("t1", 1.0, inputs=("a",), outputs=("b",)))
        wf.add_task(Task("t2", 1.0, inputs=("b",), outputs=("a",)))
        with pytest.raises(WorkflowValidationError, match="cycle"):
            wf.topological_order()

    def test_orphan_file_fails_validation(self):
        wf = Workflow()
        wf.add_file(FileSpec("orphan", 1.0))
        with pytest.raises(WorkflowValidationError, match="neither"):
            wf.validate()


class TestFigure3:
    """Structural assertions on the paper's Figure 3 example."""

    @pytest.fixture()
    def wf(self):
        return example_figure3_workflow()

    def test_task_and_file_counts(self, wf):
        assert len(wf) == 7
        assert len(wf.files) == 8

    def test_parents_children(self, wf):
        assert wf.parents("task0") == frozenset()
        assert wf.parents("task6") == {"task3", "task4", "task5"}
        assert wf.children("task0") == {"task1", "task2"}
        assert wf.children("task6") == frozenset()

    def test_roots_and_leaves(self, wf):
        assert wf.roots() == ["task0"]
        assert wf.leaves() == ["task6"]

    def test_levels_match_paper_definition(self, wf):
        levels = wf.levels()
        assert levels["task0"] == 1
        assert levels["task1"] == levels["task2"] == 2
        assert levels["task3"] == levels["task4"] == levels["task5"] == 3
        assert levels["task6"] == 4
        assert wf.depth() == 4

    def test_file_classification(self, wf):
        assert wf.input_files() == ["a"]
        # The paper: "files g and h ... are the net output of the workflow"
        assert sorted(wf.output_files()) == ["g", "h"]
        assert sorted(wf.intermediate_files()) == ["b", "c", "d", "e", "f"]

    def test_producers_consumers(self, wf):
        assert wf.producer_of("a") is None
        assert wf.producer_of("b") == "task0"
        assert wf.consumers_of("c") == {"task3", "task4"}
        assert wf.consumers_of("g") == frozenset()

    def test_edges(self, wf):
        edges = set(wf.edges())
        assert ("task0", "task1") in edges
        assert ("task5", "task6") in edges
        assert len(edges) == 8

    def test_aggregates(self, wf):
        assert wf.total_runtime() == pytest.approx(700.0)
        assert wf.total_file_bytes() == pytest.approx(8e6)
        assert wf.input_bytes() == pytest.approx(1e6)
        assert wf.output_bytes() == pytest.approx(2e6)

    def test_tasks_at_level(self, wf):
        assert wf.tasks_at_level(3) == ["task3", "task4", "task5"]

    def test_copy_is_equivalent(self, wf):
        cp = wf.copy()
        assert set(cp.tasks) == set(wf.tasks)
        assert set(cp.files) == set(wf.files)
        assert sorted(cp.output_files()) == sorted(wf.output_files())

    def test_with_file_sizes(self, wf):
        scaled = wf.with_file_sizes({"a": 5e6})
        assert scaled.file("a").size_bytes == 5e6
        assert scaled.file("b").size_bytes == 1e6
        assert wf.file("a").size_bytes == 1e6  # original untouched


class TestBuildWorkflow:
    def test_convenience_constructor(self):
        wf = build_workflow(
            "mini",
            [FileSpec("in", 1.0), FileSpec("out", 2.0)],
            [Task("t", 3.0, inputs=("in",), outputs=("out",))],
        )
        assert wf.name == "mini"
        assert "t" in wf
        assert wf.output_files() == ["out"]

    def test_count_by_transformation(self):
        wf = build_workflow(
            "mini",
            [FileSpec("a", 1.0), FileSpec("b", 1.0), FileSpec("c", 1.0)],
            [
                Task("t1", 1.0, inputs=("a",), outputs=("b",), transformation="x"),
                Task("t2", 1.0, inputs=("b",), outputs=("c",), transformation="x"),
            ],
        )
        assert wf.count_by_transformation() == {"x": 2}
