"""Static data-flow analysis tests, including the simulator oracle check."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.sim.executor import simulate
from repro.workflow.dataflow import (
    level_data_volumes,
    predict_transfers,
    reuse_factor,
    transfer_multiplicity,
)
from repro.workflow.generators import (
    chain_workflow,
    example_figure3_workflow,
    fork_join_workflow,
    random_layered_workflow,
)


class TestPredictions:
    def test_figure3_by_hand(self):
        wf = example_figure3_workflow(file_size=1.25e6)
        reg = predict_transfers(wf, "regular")
        assert reg.bytes_in == pytest.approx(1.25e6)  # file a
        assert reg.bytes_out == pytest.approx(2 * 1.25e6)  # g, h
        assert reg.n_transfers_in == 1
        assert reg.n_transfers_out == 2
        rem = predict_transfers(wf, "remote-io")
        assert rem.bytes_in == pytest.approx(9 * 1.25e6)
        assert rem.bytes_out == pytest.approx(7 * 1.25e6)

    def test_regular_equals_cleanup(self):
        wf = fork_join_workflow(5)
        reg = predict_transfers(wf, "regular")
        cln = predict_transfers(wf, "cleanup")
        assert reg.bytes_in == cln.bytes_in
        assert reg.bytes_out == cln.bytes_out

    def test_enum_accepted(self):
        from repro.sim.datamanager import DataMode

        wf = chain_workflow(2)
        assert predict_transfers(wf, DataMode.REMOTE_IO).mode == "remote-io"

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError, match="unknown data mode"):
            predict_transfers(chain_workflow(1), "warp")

    @settings(max_examples=25, deadline=None)
    @given(
        layers=st.integers(1, 4),
        width=st.integers(1, 5),
        seed=st.integers(0, 5000),
        p=st.integers(1, 6),
    )
    def test_predictions_match_simulator(self, layers, width, seed, p):
        """The static analysis is an exact oracle for the simulator."""
        wf = random_layered_workflow(layers, width, seed=seed)
        for mode in ("regular", "cleanup", "remote-io"):
            pred = predict_transfers(wf, mode)
            r = simulate(wf, p, mode, record_trace=False)
            assert r.bytes_in == pytest.approx(pred.bytes_in)
            assert r.bytes_out == pytest.approx(pred.bytes_out)
            assert r.n_transfers_in == pred.n_transfers_in
            assert r.n_transfers_out == pred.n_transfers_out

    def test_montage_prediction_matches_simulator(self, montage1):
        for mode in ("regular", "remote-io"):
            pred = predict_transfers(montage1, mode)
            r = simulate(montage1, 32, mode, record_trace=False)
            assert r.bytes_in == pytest.approx(pred.bytes_in)
            assert r.bytes_out == pytest.approx(pred.bytes_out)


class TestMultiplicityAndReuse:
    def test_figure3_multiplicity(self):
        hist = transfer_multiplicity(example_figure3_workflow())
        # g unconsumed; a,d,e,f,h consumed once (h by task6);
        # b,c consumed twice.
        assert hist == {0: 1, 1: 5, 2: 2}

    def test_chain_reuse_is_one(self):
        assert reuse_factor(chain_workflow(5)) == pytest.approx(1.0)

    def test_montage_reuse_plausible(self, montage1):
        # Projected/corrected images feed several consumers.
        assert 1.5 < reuse_factor(montage1) < 3.5

    def test_reuse_grows_with_fanout(self):
        narrow = fork_join_workflow(2)
        # every mid file read once, inputs once: reuse 1
        assert reuse_factor(narrow) == pytest.approx(1.0)


class TestLevelVolumes:
    def test_chain_levels(self):
        wf = chain_workflow(3, file_size=2e6)
        vols = level_data_volumes(wf)
        assert vols == {0: 2e6, 1: 2e6, 2: 2e6, 3: 2e6}

    def test_montage_wave_levels_dominate(self, montage1):
        vols = level_data_volumes(montage1)
        # level 1 (projected) and level 5 (corrected) carry ~2N images.
        assert vols[1] > vols[2]
        assert vols[5] > vols[4]
        total = sum(vols.values())
        assert total == pytest.approx(montage1.total_file_bytes())
