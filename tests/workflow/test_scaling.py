"""CCR rescaling tests (the paper's CCRd/CCRr multiplication)."""

import pytest
from hypothesis import given, strategies as st

from repro.util.units import MBPS
from repro.workflow.analysis import communication_to_computation_ratio
from repro.workflow.generators import chain_workflow, fork_join_workflow
from repro.workflow.scaling import scale_file_sizes, scale_to_ccr


class TestScaleFileSizes:
    def test_multiplies_every_file(self):
        wf = chain_workflow(3, file_size=2e6)
        scaled = scale_file_sizes(wf, 2.5)
        assert all(
            f.size_bytes == pytest.approx(5e6) for f in scaled.files.values()
        )

    def test_runtimes_untouched(self):
        wf = chain_workflow(3, runtime=42.0)
        scaled = scale_file_sizes(wf, 10.0)
        assert scaled.total_runtime() == pytest.approx(wf.total_runtime())

    def test_original_untouched(self):
        wf = chain_workflow(2, file_size=1e6)
        scale_file_sizes(wf, 3.0)
        assert wf.file("f0").size_bytes == 1e6

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            scale_file_sizes(chain_workflow(1), -1.0)

    def test_zero_factor_allowed(self):
        scaled = scale_file_sizes(chain_workflow(2), 0.0)
        assert scaled.total_file_bytes() == 0.0


class TestScaleToCCR:
    def test_hits_target_exactly(self):
        wf = fork_join_workflow(4)
        for target in (0.01, 0.053, 1.0, 7.5):
            scaled = scale_to_ccr(wf, target)
            assert communication_to_computation_ratio(
                scaled
            ) == pytest.approx(target)

    def test_respects_bandwidth_argument(self):
        wf = fork_join_workflow(4)
        bw = 100 * MBPS
        scaled = scale_to_ccr(wf, 0.5, bandwidth=bw)
        assert communication_to_computation_ratio(
            scaled, bw
        ) == pytest.approx(0.5)

    def test_rejects_nonpositive_target(self):
        with pytest.raises(ValueError):
            scale_to_ccr(chain_workflow(1), 0.0)

    def test_names_derived(self):
        assert scale_to_ccr(chain_workflow(1), 0.5).name == "chain-ccr0.5"
        assert scale_file_sizes(chain_workflow(1), 2.0).name == "chain-x2"


@given(
    factor=st.floats(0.01, 100.0, allow_nan=False),
    n=st.integers(1, 8),
)
def test_ccr_scales_linearly_with_factor(factor, n):
    wf = chain_workflow(n)
    base = communication_to_computation_ratio(wf)
    scaled = communication_to_computation_ratio(scale_file_sizes(wf, factor))
    assert scaled == pytest.approx(base * factor, rel=1e-9)
