"""Synthetic workflow generator tests."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.workflow.analysis import max_parallelism
from repro.workflow.generators import (
    chain_workflow,
    diamond_workflow,
    fork_join_workflow,
    random_layered_workflow,
)


class TestChain:
    def test_structure(self):
        wf = chain_workflow(4)
        assert len(wf) == 4
        assert wf.depth() == 4
        assert wf.input_files() == ["f0"]
        assert wf.output_files() == ["f4"]

    def test_minimum_length(self):
        with pytest.raises(ValueError):
            chain_workflow(0)


class TestDiamond:
    def test_structure(self):
        wf = diamond_workflow()
        assert len(wf) == 4
        assert wf.depth() == 3
        assert wf.parents("join") == {"left", "right"}


class TestForkJoin:
    def test_structure(self):
        wf = fork_join_workflow(6)
        assert len(wf) == 7
        assert max_parallelism(wf) == 6
        assert len(wf.input_files()) == 6
        assert wf.output_files() == ["out"]

    def test_minimum_width(self):
        with pytest.raises(ValueError):
            fork_join_workflow(0)


class TestRandomLayered:
    def test_deterministic_given_seed(self):
        a = random_layered_workflow(4, 5, seed=11)
        b = random_layered_workflow(4, 5, seed=11)
        assert set(a.tasks) == set(b.tasks)
        for tid in a.tasks:
            assert a.task(tid).runtime == b.task(tid).runtime
            assert a.task(tid).inputs == b.task(tid).inputs
        for name in a.files:
            assert a.file(name).size_bytes == b.file(name).size_bytes

    def test_different_seeds_differ(self):
        a = random_layered_workflow(4, 5, seed=11)
        b = random_layered_workflow(4, 5, seed=12)
        runtimes_a = sorted(t.runtime for t in a.tasks.values())
        runtimes_b = sorted(t.runtime for t in b.tasks.values())
        assert runtimes_a != runtimes_b

    def test_rejects_bad_density(self):
        with pytest.raises(ValueError):
            random_layered_workflow(2, 2, seed=0, edge_density=0.0)
        with pytest.raises(ValueError):
            random_layered_workflow(2, 2, seed=0, edge_density=1.5)

    @settings(max_examples=25, deadline=None)
    @given(
        layers=st.integers(1, 5),
        width=st.integers(1, 6),
        seed=st.integers(0, 10_000),
        density=st.floats(0.1, 1.0),
    )
    def test_always_valid_and_layered(self, layers, width, seed, density):
        wf = random_layered_workflow(
            layers, width, seed=seed, edge_density=density
        )
        wf.validate()  # no cycles, consistent files
        assert len(wf) == layers * width
        assert wf.depth() == layers
        # every non-root task depends only on the previous layer
        levels = wf.levels()
        for tid in wf.tasks:
            layer = int(tid.split("_")[0][1:])
            assert levels[tid] == layer + 1
