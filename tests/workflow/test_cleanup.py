"""Dynamic-cleanup analysis tests.

The paper's worked example (Section 3): in Figure 3, "file a would be
deleted after task 0 has completed, however file b would be deleted only
when task 6 has completed" — wait, b's consumers are tasks 1 and 2; the
paper's sentence refers to its own earlier example where b feeds the join.
We assert the general rule: a file is releasable once *all* its consumers
have completed, and net outputs are protected.
"""

import pytest

from repro.workflow.cleanup import cleanup_plan, releasers_index
from repro.workflow.dag import FileSpec, Task, Workflow
from repro.workflow.generators import (
    chain_workflow,
    example_figure3_workflow,
    fork_join_workflow,
)


class TestFigure3Plan:
    @pytest.fixture()
    def plan(self):
        return cleanup_plan(example_figure3_workflow())

    def test_input_released_by_its_consumer(self, plan):
        # "file a would be deleted after task 0 has completed"
        assert plan.release_after["a"] == {"task0"}

    def test_shared_intermediate_released_by_all_consumers(self, plan):
        assert plan.release_after["b"] == {"task1", "task2"}
        assert plan.release_after["c"] == {"task3", "task4"}

    def test_outputs_protected(self, plan):
        assert plan.protected == {"g", "h"}
        assert "g" not in plan.release_after
        # h is consumed by task6 *and* is a net output: protected wins.
        assert "h" not in plan.release_after

    def test_releasable_on(self, plan):
        assert plan.releasable_on("task0", {"task0"}) == ["a"]
        # b needs both task1 and task2.
        assert plan.releasable_on("task1", {"task0", "task1"}) == []
        assert plan.releasable_on("task2", {"task0", "task1", "task2"}) == ["b"]


class TestEdgeCases:
    def test_unconsumed_intermediate_released_by_producer(self):
        wf = Workflow("w")
        for n in ("a", "b", "c"):
            wf.add_file(FileSpec(n, 1.0))
        wf.add_task(Task("t", 1.0, inputs=("a",), outputs=("b", "c")))
        wf.add_task(Task("u", 1.0, inputs=("b",), outputs=()))
        wf.mark_output("b")
        # c is produced, unconsumed, NOT an explicit output -> it is a
        # structural terminal product, so output_files() claims it and it
        # is protected rather than released.
        plan = cleanup_plan(wf)
        assert "c" in plan.protected
        assert plan.release_after["a"] == {"t"}

    def test_chain_releases_everything_but_the_output(self):
        wf = chain_workflow(4)
        plan = cleanup_plan(wf)
        assert plan.protected == {"f4"}
        for i in range(4):
            assert plan.release_after[f"f{i}"] == {f"t{i}"}

    def test_releasers_index_inverts_plan(self):
        wf = fork_join_workflow(3)
        plan = cleanup_plan(wf)
        idx = releasers_index(plan)
        # each worker releases its own input; join releases the mids
        for i in range(3):
            assert f"in{i}" in idx[f"w{i}"]
            assert f"mid{i}" in idx["join"]
        # Every (file, releaser) pair appears exactly once.
        pairs = {
            (f, t) for t, files in idx.items() for f in files
        }
        expected = {
            (f, t)
            for f, releasers in plan.release_after.items()
            for t in releasers
        }
        assert pairs == expected
