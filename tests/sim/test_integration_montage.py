"""End-to-end simulator checks on the real Montage workloads.

These integration tests assert the qualitative findings the paper reads
off Figures 4-9 directly from full simulations.
"""

import pytest

from repro.sim.executor import simulate
from repro.util.units import HOUR, MINUTE


class TestMontage1Degree:
    @pytest.fixture(scope="class")
    def by_mode(self, montage1):
        return {
            mode: simulate(montage1, 158, mode)
            for mode in ("remote-io", "regular", "cleanup")
        }

    def test_storage_ranking_matches_figure7_top(self, by_mode):
        # "The least storage used is in the remote I/O mode ... the most
        # storage is used in the regular mode."
        assert (
            by_mode["remote-io"].storage_byte_seconds
            < by_mode["cleanup"].storage_byte_seconds
            < by_mode["regular"].storage_byte_seconds
        )

    def test_transfer_ranking_matches_figure7_middle(self, by_mode):
        # "Clearly the most data transfer happens in the remote I/O mode";
        # regular and cleanup move identical bytes.
        assert by_mode["remote-io"].bytes_in > by_mode["regular"].bytes_in
        assert by_mode["remote-io"].bytes_out > by_mode["regular"].bytes_out
        assert by_mode["regular"].bytes_in == pytest.approx(
            by_mode["cleanup"].bytes_in
        )
        assert by_mode["regular"].bytes_out == pytest.approx(
            by_mode["cleanup"].bytes_out
        )

    def test_regular_and_cleanup_same_makespan(self, by_mode):
        assert by_mode["regular"].makespan == pytest.approx(
            by_mode["cleanup"].makespan
        )

    def test_cleanup_roughly_halves_storage(self, by_mode):
        # The paper cites ~50% footprint reductions for Montage-like
        # workflows; accept a broad band around that.
        ratio = (
            by_mode["cleanup"].storage_byte_seconds
            / by_mode["regular"].storage_byte_seconds
        )
        assert 0.25 < ratio < 0.75


class TestProcessorScaling:
    def test_makespan_1proc_near_paper(self, montage1):
        # Paper: 5.5 hours on one processor.
        r = simulate(montage1, 1, record_trace=False)
        assert r.makespan == pytest.approx(5.5 * HOUR, rel=0.06)

    def test_makespan_128proc_near_paper(self, montage1):
        # Paper: 18 minutes on 128 processors (we measure ~15.5 min with
        # the GridSim-style dedicated link, ~18.6 with the FIFO link).
        r = simulate(montage1, 128, record_trace=False)
        assert r.makespan == pytest.approx(18 * MINUTE, rel=0.2)
        contended = simulate(
            montage1, 128, link_contention=True, record_trace=False
        )
        assert contended.makespan == pytest.approx(18 * MINUTE, rel=0.08)

    def test_makespan_decreases_with_processors(self, montage2):
        spans = [
            simulate(montage2, p, record_trace=False).makespan
            for p in (1, 2, 4, 8, 16, 32)
        ]
        assert spans == sorted(spans, reverse=True)

    def test_storage_integral_decreases_with_processors(self, montage1):
        # Figure 4: "as the number of processors is increased, the storage
        # costs decline" (shorter occupancy).
        a = simulate(montage1, 1, record_trace=False)
        b = simulate(montage1, 64, record_trace=False)
        assert b.storage_byte_seconds < a.storage_byte_seconds

    def test_transfers_independent_of_processors(self, montage1):
        # Figure 4: "the data transfer costs are independent of the number
        # of processors provisioned".
        a = simulate(montage1, 1, record_trace=False)
        b = simulate(montage1, 128, record_trace=False)
        assert a.bytes_in == pytest.approx(b.bytes_in)
        assert a.bytes_out == pytest.approx(b.bytes_out)

    def test_utilization_drops_when_overprovisioned(self, montage1):
        # "CPU utilization can be low in the provisioned case."
        low = simulate(montage1, 128, record_trace=False)
        high = simulate(montage1, 1, record_trace=False)
        assert low.utilization < 0.3
        assert high.utilization > 0.95


class TestMontage4DegreeSmoke:
    def test_full_parallelism_run(self, montage4):
        r = simulate(montage4, 1814, "cleanup", record_trace=False)
        assert r.n_task_executions == 3027
        assert r.makespan > 0
        assert r.storage_byte_seconds > 0
