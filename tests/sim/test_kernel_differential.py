"""Differential suite: fast kernel ≡ event engine, exactly.

Every property here runs the same configuration through both backends
and requires dataclass equality of the full :class:`SimulationResult` —
which is *float-exact*: makespan, byte counters, storage byte-seconds,
peak storage, CPU-busy seconds, every task and transfer record, and the
StepCurve breakpoints themselves.  Any divergence in event ordering,
accumulation order or arithmetic shape between the two implementations
shows up as a failure with a shrunken DAG attached.
"""

import pytest
from hypothesis import assume, given, settings, strategies as st

from repro.sim import (
    FIFO_ORDER,
    LEVEL_ORDER,
    LONGEST_FIRST,
    SHORTEST_FIRST,
    simulate,
)
from repro.sim.failures import FailureModel, WorkflowAbortedError

from tests.strategies import DATA_MODES, failure_specs, workflows

pytestmark = pytest.mark.property

ORDERINGS = (FIFO_ORDER, LONGEST_FIRST, SHORTEST_FIRST, LEVEL_ORDER)


def both(wf, **kwargs):
    a = simulate(wf, kernel="event", **kwargs)
    b = simulate(wf, kernel="fast", **kwargs)
    return a, b


@settings(max_examples=120, deadline=None)
@given(
    wf=workflows(),
    p=st.integers(1, 8),
    mode=st.sampled_from(DATA_MODES),
    trace=st.booleans(),
)
def test_kernel_identical_all_modes(wf, p, mode, trace):
    a, b = both(wf, n_processors=p, data_mode=mode, record_trace=trace)
    assert a == b


@settings(max_examples=60, deadline=None)
@given(
    wf=workflows(),
    p=st.integers(1, 6),
    mode=st.sampled_from(DATA_MODES),
    overhead=st.sampled_from([0.0, 0.5, 2.5]),
    boot=st.sampled_from([0.0, 10.0, 45.0]),
)
def test_kernel_identical_with_overhead_and_boot(wf, p, mode, overhead, boot):
    a, b = both(
        wf,
        n_processors=p,
        data_mode=mode,
        task_overhead_seconds=overhead,
        compute_ready_seconds=boot,
        record_trace=True,
    )
    assert a == b


@settings(max_examples=60, deadline=None)
@given(
    wf=workflows(),
    p=st.integers(1, 6),
    mode=st.sampled_from(DATA_MODES),
    ordering=st.sampled_from(ORDERINGS),
)
def test_kernel_identical_under_orderings(wf, p, mode, ordering):
    a, b = both(wf, n_processors=p, data_mode=mode, ordering=ordering)
    assert a == b


@settings(max_examples=40, deadline=None)
@given(
    wf=workflows(),
    p=st.integers(1, 6),
    bandwidth=st.sampled_from([1.25e5, 1.25e6, 1e9]),
)
def test_kernel_identical_across_bandwidths(wf, p, bandwidth):
    a, b = both(
        wf,
        n_processors=p,
        data_mode="cleanup",
        bandwidth_bytes_per_sec=bandwidth,
    )
    assert a == b


@settings(max_examples=100, deadline=None)
@given(
    wf=workflows(),
    p=st.integers(1, 6),
    mode=st.sampled_from(DATA_MODES),
    sep=st.booleans(),
    trace=st.booleans(),
)
def test_kernel_identical_with_contended_link(wf, p, mode, sep, trace):
    # The contended FIFO link serializes per lane; separate_links splits
    # stage-in and stage-out onto independent lanes.  Bit-identical
    # transfer records (queued start times included) are required.
    a, b = both(
        wf,
        n_processors=p,
        data_mode=mode,
        link_contention=True,
        separate_links=sep,
        record_trace=trace,
    )
    assert a == b


def both_or_deadlock(wf, **kwargs):
    """Run both backends; return (result, error-message) per backend.

    A capacity below the workflow's minimum footprint deadlocks — the
    kernel must deadlock on exactly the same configurations, with
    exactly the same diagnostic.
    """
    out = []
    for kernel in ("event", "fast"):
        try:
            out.append((simulate(wf, kernel=kernel, **kwargs), None))
        except RuntimeError as err:
            out.append((None, str(err)))
    return out


@settings(max_examples=100, deadline=None)
@given(
    wf=workflows(),
    p=st.integers(1, 6),
    mode=st.sampled_from(DATA_MODES),
    frac=st.sampled_from([0.1, 0.3, 0.6, 1.0, 2.0]),
    cont=st.booleans(),
    trace=st.booleans(),
)
def test_kernel_identical_with_finite_capacity(wf, p, mode, frac, cont, trace):
    # Capacity as a fraction of the total byte footprint exercises both
    # the admission-control stalls (small fractions) and the unconstrained
    # regime (fraction 2.0); deadlocks must agree byte-for-byte too.
    total = sum(f.size_bytes for f in wf.files.values())
    (a, a_err), (b, b_err) = both_or_deadlock(
        wf,
        n_processors=p,
        data_mode=mode,
        storage_capacity_bytes=max(total * frac, 1.0),
        link_contention=cont,
        record_trace=trace,
    )
    assert a_err == b_err
    assert a == b


@settings(max_examples=60, deadline=None)
@given(
    wf=workflows(),
    ps=st.lists(st.integers(1, 8), min_size=1, max_size=6),
    mode=st.sampled_from(DATA_MODES),
    trace=st.booleans(),
)
def test_batch_identical_to_event_engine(wf, ps, mode, trace):
    # One run_fast_kernel_batch call over a processor list (duplicates
    # allowed — the lowering and derived vectors are shared) must equal
    # per-config event-engine runs, config by config.
    from repro.sim import ExecutionEnvironment, KernelConfig
    from repro.sim.kernel import run_fast_kernel_batch

    configs = [
        KernelConfig(
            environment=ExecutionEnvironment(
                n_processors=p, record_trace=trace
            ),
            data_mode=mode,
        )
        for p in ps
    ]
    batch = run_fast_kernel_batch(wf, configs)
    for p, got in zip(ps, batch):
        assert got == simulate(
            wf, p, data_mode=mode, record_trace=trace, kernel="event"
        )


def both_or_abort(wf, spec, **kwargs):
    """Run both backends with a fresh failure model each.

    Returns ``(result, abort-message)`` per backend: the kernel must
    abort on exactly the same (workflow, seed, probability, budget)
    cells as the engine, raising ``WorkflowAbortedError`` with the
    engine's verbatim message (same task, same attempt number).
    """
    out = []
    for kernel in ("event", "fast"):
        try:
            out.append(
                (simulate(wf, kernel=kernel, failures=spec.build(),
                          **kwargs), None)
            )
        except WorkflowAbortedError as err:
            out.append((None, str(err)))
    return out


@settings(max_examples=120, deadline=None)
@given(
    wf=workflows(),
    p=st.integers(1, 8),
    mode=st.sampled_from(DATA_MODES),
    spec=failure_specs(),
    trace=st.booleans(),
)
def test_kernel_identical_under_failures(wf, p, mode, spec, trace):
    # The kernel replays the seeded RNG stream at the engine's exact
    # (time, seq) completion points: identical retry schedules, re-billed
    # attempts, attempt numbers on every TaskRecord, and curves.  A fresh
    # model per run — the stream is consumed.
    a = simulate(wf, n_processors=p, data_mode=mode, record_trace=trace,
                 failures=spec.build(), kernel="event")
    b = simulate(wf, n_processors=p, data_mode=mode, record_trace=trace,
                 failures=spec.build(), kernel="fast")
    assert a == b


@settings(max_examples=60, deadline=None)
@given(
    wf=workflows(),
    p=st.integers(1, 6),
    mode=st.sampled_from(DATA_MODES),
    spec=failure_specs(),
    cont=st.booleans(),
    frac=st.sampled_from([None, 1.0, 2.0]),
)
def test_kernel_identical_under_failures_full_model(
    wf, p, mode, spec, cont, frac
):
    # Failures stacked on the rest of the resource model: contended
    # links and feasible finite capacity (retries re-run in place, so
    # the footprint is unchanged and full-footprint capacity is safe).
    total = sum(f.size_bytes for f in wf.files.values())
    cap = None if frac is None else max(total * frac, 1.0)
    kwargs = dict(
        n_processors=p, data_mode=mode, link_contention=cont,
        storage_capacity_bytes=cap, record_trace=True,
    )
    try:
        a = simulate(wf, failures=spec.build(), kernel="event", **kwargs)
    except RuntimeError:
        # Infeasible capacity deadlock — parity is covered elsewhere.
        assume(False)
    b = simulate(wf, failures=spec.build(), kernel="fast", **kwargs)
    assert a == b


@settings(max_examples=80, deadline=None)
@given(
    wf=workflows(),
    p=st.integers(1, 6),
    mode=st.sampled_from(DATA_MODES),
    prob=st.floats(0.3, 0.9, allow_nan=False),
    seed=st.integers(0, 2**16),
    retries=st.integers(0, 3),
)
def test_kernel_abort_parity(wf, p, mode, prob, seed, retries):
    # Tight retry budgets + high probabilities force WorkflowAbortedError
    # on many cells: both backends must abort on the same cells with the
    # same message (same task, same attempt), or complete identically.
    from repro.sweep import FailureSpec

    spec = FailureSpec(prob, seed=seed, max_retries=retries)
    (a, a_err), (b, b_err) = both_or_abort(wf, spec, n_processors=p,
                                           data_mode=mode)
    assert a_err == b_err
    assert a == b


@settings(max_examples=40, deadline=None)
@given(
    wf=workflows(max_tasks=10),
    p=st.integers(1, 4),
    mode=st.sampled_from(DATA_MODES),
    probs=st.lists(
        st.floats(0.0, 0.4, allow_nan=False), min_size=1, max_size=3,
        unique=True,
    ),
    seeds=st.lists(st.integers(0, 2**16), min_size=1, max_size=4,
                   unique=True),
    retries=st.integers(0, 50),
)
def test_monte_carlo_identical_to_event_engine(
    wf, p, mode, probs, seeds, retries
):
    # Every (probability, seed) cell of run_monte_carlo must equal a
    # per-run event-engine simulation with a fresh FailureModel —
    # including which cells abort, and their messages.
    from repro.sim import ExecutionEnvironment, KernelConfig
    from repro.sim.kernel import run_monte_carlo

    config = KernelConfig(
        environment=ExecutionEnvironment(n_processors=p), data_mode=mode
    )
    cells = run_monte_carlo(wf, config, probs, seeds, max_retries=retries,
                            summary_only=True)
    i = 0
    for prob in probs:
        for seed in seeds:
            cell = cells[i]
            i += 1
            assert cell.probability == prob and cell.seed == seed
            try:
                ref = simulate(
                    wf, p, data_mode=mode, record_trace=False,
                    failures=FailureModel(prob, seed=seed,
                                          max_retries=retries),
                    kernel="event",
                )
            except WorkflowAbortedError as err:
                assert cell.aborted and cell.result is None
                assert cell.abort_message == str(err)
                continue
            assert not cell.aborted
            assert cell.result == ref


@pytest.mark.audit
@settings(max_examples=25, deadline=None)
@given(
    wf=workflows(max_tasks=8),
    p=st.integers(1, 4),
    mode=st.sampled_from(DATA_MODES),
)
def test_kernel_records_satisfy_audit_oracle(wf, p, mode):
    # The oracle recomputes every aggregate from the kernel's emitted
    # records and checks schedule legality — an equivalence proof that
    # does not rely on the event engine at all.
    result = simulate(wf, p, data_mode=mode, kernel="fast", audit=True)
    assert result.n_task_executions == len(wf.tasks)


@pytest.mark.audit
@settings(max_examples=25, deadline=None)
@given(
    wf=workflows(max_tasks=8),
    p=st.integers(1, 4),
    mode=st.sampled_from(DATA_MODES),
    spec=failure_specs(),
)
def test_failure_kernel_records_satisfy_audit_oracle(wf, p, mode, spec):
    # The oracle reconciles the kernel's own failure traces: wasted
    # attempts re-billed into compute-seconds and cost, CPU occupancy
    # held across retries, attempt numbering contiguous, retry budget
    # respected — without consulting the event engine.
    result = simulate(
        wf, p, data_mode=mode, failures=spec.build(), kernel="fast",
        audit=True,
    )
    assert result.n_task_executions == len(wf.tasks) + result.n_task_failures


@pytest.mark.audit
@settings(max_examples=25, deadline=None)
@given(
    wf=workflows(max_tasks=8),
    p=st.integers(1, 4),
    mode=st.sampled_from(DATA_MODES),
    sep=st.booleans(),
)
def test_contended_kernel_records_satisfy_audit_oracle(wf, p, mode, sep):
    # The oracle's link checker enforces FIFO lane legality (no
    # overlapping transfers per lane) — run it over the kernel's own
    # contended-link records.
    result = simulate(
        wf, p, data_mode=mode, link_contention=True, separate_links=sep,
        kernel="fast", audit=True,
    )
    assert result.n_task_executions == len(wf.tasks)


@pytest.mark.audit
@settings(max_examples=25, deadline=None)
@given(
    wf=workflows(max_tasks=8),
    p=st.integers(1, 4),
    mode=st.sampled_from(DATA_MODES),
)
def test_capacity_kernel_records_satisfy_audit_oracle(wf, p, mode):
    # Feasible finite capacity (full footprint: admission control is
    # live, but no deadlock) — the kernel's records must still pass
    # every oracle check.
    total = sum(f.size_bytes for f in wf.files.values())
    try:
        result = simulate(
            wf, p, data_mode=mode, storage_capacity_bytes=max(total, 1.0),
            kernel="fast", audit=True,
        )
    except RuntimeError:
        # Genuinely infeasible under this mode (deadlock equality with
        # the engine is covered by the differential property above).
        assume(False)
    assert result.n_task_executions == len(wf.tasks)


# ------------------------------------------------------------------ #
# backend parameterization: the same differential properties under the
# SoA core (REPRO_SIM_JIT=on routes eligible FIFO turbo replays through
# repro.sim.kernel_core; off pins the legacy loops) — the kernel must
# equal the event engine under either backend.
# ------------------------------------------------------------------ #
import contextlib
import os
import warnings as _warnings

from repro.sim import kernel_core


@contextlib.contextmanager
def _jit_pinned(mode):
    prev = os.environ.get(kernel_core.JIT_ENV)
    os.environ[kernel_core.JIT_ENV] = mode
    kernel_core._invalidate_backend()
    try:
        with _warnings.catch_warnings():
            # "on" without numba warns once that the SoA core runs
            # interpreted — expected in the no-numba CI leg.
            _warnings.simplefilter("ignore", RuntimeWarning)
            yield
    finally:
        if prev is None:
            os.environ.pop(kernel_core.JIT_ENV, None)
        else:
            os.environ[kernel_core.JIT_ENV] = prev
        kernel_core._invalidate_backend()


@pytest.mark.parametrize("jit", ["on", "off"])
@settings(max_examples=50, deadline=None)
@given(
    wf=workflows(),
    p=st.integers(1, 8),
    mode=st.sampled_from(DATA_MODES),
)
def test_kernel_identical_under_jit_backends(jit, wf, p, mode):
    with _jit_pinned(jit):
        a, b = both(wf, n_processors=p, data_mode=mode, record_trace=False)
    assert a == b


@pytest.mark.parametrize("jit", ["on", "off"])
@settings(max_examples=40, deadline=None)
@given(
    wf=workflows(max_tasks=10),
    p=st.integers(1, 4),
    spec=failure_specs(),
)
def test_kernel_failures_identical_under_jit_backends(jit, wf, p, spec):
    with _jit_pinned(jit):
        (ra, ma), (rb, mb) = both_or_abort(
            wf, spec, n_processors=p, record_trace=False
        )
    assert ma == mb
    assert ra == rb


@pytest.mark.parametrize("jit", ["on", "off"])
@settings(max_examples=20, deadline=None)
@given(
    wf=workflows(max_tasks=10),
    probs=st.lists(
        st.floats(0.0, 0.4, allow_nan=False), min_size=1, max_size=3
    ),
    n_seeds=st.integers(1, 4),
)
def test_monte_carlo_identical_under_jit_backends(jit, wf, probs, n_seeds):
    from repro.sim import ExecutionEnvironment, KernelConfig
    from repro.sim.failures import FailureModel
    from repro.sim.kernel import run_monte_carlo

    env = ExecutionEnvironment(n_processors=2, record_trace=False)
    cfg = KernelConfig(environment=env)
    with _jit_pinned(jit):
        cells = run_monte_carlo(
            wf, cfg, probs, range(n_seeds), max_retries=1
        )
    for cell in cells:
        failures = (
            FailureModel(cell.probability, seed=cell.seed, max_retries=1)
            if cell.probability > 0.0 else None
        )
        try:
            ref = simulate(
                wf, 2, record_trace=False, failures=failures,
                kernel="event",
            )
        except WorkflowAbortedError as err:
            assert cell.aborted
            assert cell.abort_message == str(err)
        else:
            assert not cell.aborted
            assert cell.result == ref
