"""Differential suite: fast kernel ≡ event engine, exactly.

Every property here runs the same configuration through both backends
and requires dataclass equality of the full :class:`SimulationResult` —
which is *float-exact*: makespan, byte counters, storage byte-seconds,
peak storage, CPU-busy seconds, every task and transfer record, and the
StepCurve breakpoints themselves.  Any divergence in event ordering,
accumulation order or arithmetic shape between the two implementations
shows up as a failure with a shrunken DAG attached.
"""

import pytest
from hypothesis import assume, given, settings, strategies as st

from repro.sim import (
    FIFO_ORDER,
    LEVEL_ORDER,
    LONGEST_FIRST,
    SHORTEST_FIRST,
    simulate,
)

from tests.strategies import DATA_MODES, workflows

pytestmark = pytest.mark.property

ORDERINGS = (FIFO_ORDER, LONGEST_FIRST, SHORTEST_FIRST, LEVEL_ORDER)


def both(wf, **kwargs):
    a = simulate(wf, kernel="event", **kwargs)
    b = simulate(wf, kernel="fast", **kwargs)
    return a, b


@settings(max_examples=120, deadline=None)
@given(
    wf=workflows(),
    p=st.integers(1, 8),
    mode=st.sampled_from(DATA_MODES),
    trace=st.booleans(),
)
def test_kernel_identical_all_modes(wf, p, mode, trace):
    a, b = both(wf, n_processors=p, data_mode=mode, record_trace=trace)
    assert a == b


@settings(max_examples=60, deadline=None)
@given(
    wf=workflows(),
    p=st.integers(1, 6),
    mode=st.sampled_from(DATA_MODES),
    overhead=st.sampled_from([0.0, 0.5, 2.5]),
    boot=st.sampled_from([0.0, 10.0, 45.0]),
)
def test_kernel_identical_with_overhead_and_boot(wf, p, mode, overhead, boot):
    a, b = both(
        wf,
        n_processors=p,
        data_mode=mode,
        task_overhead_seconds=overhead,
        compute_ready_seconds=boot,
        record_trace=True,
    )
    assert a == b


@settings(max_examples=60, deadline=None)
@given(
    wf=workflows(),
    p=st.integers(1, 6),
    mode=st.sampled_from(DATA_MODES),
    ordering=st.sampled_from(ORDERINGS),
)
def test_kernel_identical_under_orderings(wf, p, mode, ordering):
    a, b = both(wf, n_processors=p, data_mode=mode, ordering=ordering)
    assert a == b


@settings(max_examples=40, deadline=None)
@given(
    wf=workflows(),
    p=st.integers(1, 6),
    bandwidth=st.sampled_from([1.25e5, 1.25e6, 1e9]),
)
def test_kernel_identical_across_bandwidths(wf, p, bandwidth):
    a, b = both(
        wf,
        n_processors=p,
        data_mode="cleanup",
        bandwidth_bytes_per_sec=bandwidth,
    )
    assert a == b


@settings(max_examples=100, deadline=None)
@given(
    wf=workflows(),
    p=st.integers(1, 6),
    mode=st.sampled_from(DATA_MODES),
    sep=st.booleans(),
    trace=st.booleans(),
)
def test_kernel_identical_with_contended_link(wf, p, mode, sep, trace):
    # The contended FIFO link serializes per lane; separate_links splits
    # stage-in and stage-out onto independent lanes.  Bit-identical
    # transfer records (queued start times included) are required.
    a, b = both(
        wf,
        n_processors=p,
        data_mode=mode,
        link_contention=True,
        separate_links=sep,
        record_trace=trace,
    )
    assert a == b


def both_or_deadlock(wf, **kwargs):
    """Run both backends; return (result, error-message) per backend.

    A capacity below the workflow's minimum footprint deadlocks — the
    kernel must deadlock on exactly the same configurations, with
    exactly the same diagnostic.
    """
    out = []
    for kernel in ("event", "fast"):
        try:
            out.append((simulate(wf, kernel=kernel, **kwargs), None))
        except RuntimeError as err:
            out.append((None, str(err)))
    return out


@settings(max_examples=100, deadline=None)
@given(
    wf=workflows(),
    p=st.integers(1, 6),
    mode=st.sampled_from(DATA_MODES),
    frac=st.sampled_from([0.1, 0.3, 0.6, 1.0, 2.0]),
    cont=st.booleans(),
    trace=st.booleans(),
)
def test_kernel_identical_with_finite_capacity(wf, p, mode, frac, cont, trace):
    # Capacity as a fraction of the total byte footprint exercises both
    # the admission-control stalls (small fractions) and the unconstrained
    # regime (fraction 2.0); deadlocks must agree byte-for-byte too.
    total = sum(f.size_bytes for f in wf.files.values())
    (a, a_err), (b, b_err) = both_or_deadlock(
        wf,
        n_processors=p,
        data_mode=mode,
        storage_capacity_bytes=max(total * frac, 1.0),
        link_contention=cont,
        record_trace=trace,
    )
    assert a_err == b_err
    assert a == b


@settings(max_examples=60, deadline=None)
@given(
    wf=workflows(),
    ps=st.lists(st.integers(1, 8), min_size=1, max_size=6),
    mode=st.sampled_from(DATA_MODES),
    trace=st.booleans(),
)
def test_batch_identical_to_event_engine(wf, ps, mode, trace):
    # One run_fast_kernel_batch call over a processor list (duplicates
    # allowed — the lowering and derived vectors are shared) must equal
    # per-config event-engine runs, config by config.
    from repro.sim import ExecutionEnvironment, KernelConfig
    from repro.sim.kernel import run_fast_kernel_batch

    configs = [
        KernelConfig(
            environment=ExecutionEnvironment(
                n_processors=p, record_trace=trace
            ),
            data_mode=mode,
        )
        for p in ps
    ]
    batch = run_fast_kernel_batch(wf, configs)
    for p, got in zip(ps, batch):
        assert got == simulate(
            wf, p, data_mode=mode, record_trace=trace, kernel="event"
        )


@pytest.mark.audit
@settings(max_examples=25, deadline=None)
@given(
    wf=workflows(max_tasks=8),
    p=st.integers(1, 4),
    mode=st.sampled_from(DATA_MODES),
)
def test_kernel_records_satisfy_audit_oracle(wf, p, mode):
    # The oracle recomputes every aggregate from the kernel's emitted
    # records and checks schedule legality — an equivalence proof that
    # does not rely on the event engine at all.
    result = simulate(wf, p, data_mode=mode, kernel="fast", audit=True)
    assert result.n_task_executions == len(wf.tasks)


@pytest.mark.audit
@settings(max_examples=25, deadline=None)
@given(
    wf=workflows(max_tasks=8),
    p=st.integers(1, 4),
    mode=st.sampled_from(DATA_MODES),
    sep=st.booleans(),
)
def test_contended_kernel_records_satisfy_audit_oracle(wf, p, mode, sep):
    # The oracle's link checker enforces FIFO lane legality (no
    # overlapping transfers per lane) — run it over the kernel's own
    # contended-link records.
    result = simulate(
        wf, p, data_mode=mode, link_contention=True, separate_links=sep,
        kernel="fast", audit=True,
    )
    assert result.n_task_executions == len(wf.tasks)


@pytest.mark.audit
@settings(max_examples=25, deadline=None)
@given(
    wf=workflows(max_tasks=8),
    p=st.integers(1, 4),
    mode=st.sampled_from(DATA_MODES),
)
def test_capacity_kernel_records_satisfy_audit_oracle(wf, p, mode):
    # Feasible finite capacity (full footprint: admission control is
    # live, but no deadlock) — the kernel's records must still pass
    # every oracle check.
    total = sum(f.size_bytes for f in wf.files.values())
    try:
        result = simulate(
            wf, p, data_mode=mode, storage_capacity_bytes=max(total, 1.0),
            kernel="fast", audit=True,
        )
    except RuntimeError:
        # Genuinely infeasible under this mode (deadlock equality with
        # the engine is covered by the differential property above).
        assume(False)
    assert result.n_task_executions == len(wf.tasks)
