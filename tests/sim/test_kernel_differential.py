"""Differential suite: fast kernel ≡ event engine, exactly.

Every property here runs the same configuration through both backends
and requires dataclass equality of the full :class:`SimulationResult` —
which is *float-exact*: makespan, byte counters, storage byte-seconds,
peak storage, CPU-busy seconds, every task and transfer record, and the
StepCurve breakpoints themselves.  Any divergence in event ordering,
accumulation order or arithmetic shape between the two implementations
shows up as a failure with a shrunken DAG attached.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.sim import (
    FIFO_ORDER,
    LEVEL_ORDER,
    LONGEST_FIRST,
    SHORTEST_FIRST,
    simulate,
)

from tests.strategies import DATA_MODES, workflows

pytestmark = pytest.mark.property

ORDERINGS = (FIFO_ORDER, LONGEST_FIRST, SHORTEST_FIRST, LEVEL_ORDER)


def both(wf, **kwargs):
    a = simulate(wf, kernel="event", **kwargs)
    b = simulate(wf, kernel="fast", **kwargs)
    return a, b


@settings(max_examples=120, deadline=None)
@given(
    wf=workflows(),
    p=st.integers(1, 8),
    mode=st.sampled_from(DATA_MODES),
    trace=st.booleans(),
)
def test_kernel_identical_all_modes(wf, p, mode, trace):
    a, b = both(wf, n_processors=p, data_mode=mode, record_trace=trace)
    assert a == b


@settings(max_examples=60, deadline=None)
@given(
    wf=workflows(),
    p=st.integers(1, 6),
    mode=st.sampled_from(DATA_MODES),
    overhead=st.sampled_from([0.0, 0.5, 2.5]),
    boot=st.sampled_from([0.0, 10.0, 45.0]),
)
def test_kernel_identical_with_overhead_and_boot(wf, p, mode, overhead, boot):
    a, b = both(
        wf,
        n_processors=p,
        data_mode=mode,
        task_overhead_seconds=overhead,
        compute_ready_seconds=boot,
        record_trace=True,
    )
    assert a == b


@settings(max_examples=60, deadline=None)
@given(
    wf=workflows(),
    p=st.integers(1, 6),
    mode=st.sampled_from(DATA_MODES),
    ordering=st.sampled_from(ORDERINGS),
)
def test_kernel_identical_under_orderings(wf, p, mode, ordering):
    a, b = both(wf, n_processors=p, data_mode=mode, ordering=ordering)
    assert a == b


@settings(max_examples=40, deadline=None)
@given(
    wf=workflows(),
    p=st.integers(1, 6),
    bandwidth=st.sampled_from([1.25e5, 1.25e6, 1e9]),
)
def test_kernel_identical_across_bandwidths(wf, p, bandwidth):
    a, b = both(
        wf,
        n_processors=p,
        data_mode="cleanup",
        bandwidth_bytes_per_sec=bandwidth,
    )
    assert a == b


@pytest.mark.audit
@settings(max_examples=25, deadline=None)
@given(
    wf=workflows(max_tasks=8),
    p=st.integers(1, 4),
    mode=st.sampled_from(DATA_MODES),
)
def test_kernel_records_satisfy_audit_oracle(wf, p, mode):
    # The oracle recomputes every aggregate from the kernel's emitted
    # records and checks schedule legality — an equivalence proof that
    # does not rely on the event engine at all.
    result = simulate(wf, p, data_mode=mode, kernel="fast", audit=True)
    assert result.n_task_executions == len(wf.tasks)
