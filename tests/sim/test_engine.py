"""Event-engine tests."""

import pytest

from repro.sim.engine import SimulationEngine


class TestScheduling:
    def test_events_run_in_time_order(self):
        eng = SimulationEngine()
        log = []
        eng.schedule(5.0, lambda: log.append(("a", eng.now)))
        eng.schedule(1.0, lambda: log.append(("b", eng.now)))
        eng.schedule(3.0, lambda: log.append(("c", eng.now)))
        eng.run()
        assert log == [("b", 1.0), ("c", 3.0), ("a", 5.0)]

    def test_ties_break_in_insertion_order(self):
        eng = SimulationEngine()
        log = []
        for name in "abc":
            eng.schedule(1.0, lambda n=name: log.append(n))
        eng.run()
        assert log == ["a", "b", "c"]

    def test_callbacks_can_schedule_more(self):
        eng = SimulationEngine()
        log = []

        def first():
            log.append(eng.now)
            eng.schedule(2.0, lambda: log.append(eng.now))

        eng.schedule(1.0, first)
        final = eng.run()
        assert log == [1.0, 3.0]
        assert final == 3.0

    def test_run_until_horizon(self):
        eng = SimulationEngine()
        log = []
        eng.schedule(1.0, lambda: log.append(1))
        eng.schedule(10.0, lambda: log.append(10))
        assert eng.run(until=5.0) == 5.0
        assert log == [1]
        assert eng.pending() == 1
        eng.run()
        assert log == [1, 10]

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            SimulationEngine().schedule(-1.0, lambda: None)

    def test_past_scheduling_rejected(self):
        eng = SimulationEngine()
        eng.schedule(5.0, lambda: eng.schedule_at(1.0, lambda: None))
        with pytest.raises(ValueError):
            eng.run()

    def test_events_processed_counter(self):
        eng = SimulationEngine()
        for _ in range(4):
            eng.schedule(1.0, lambda: None)
        eng.run()
        assert eng.events_processed == 4

    def test_empty_run(self):
        assert SimulationEngine().run() == 0.0
