"""Finite-storage-capacity (admission control) tests.

The paper assumes infinite storage; this extension implements the
storage-constrained scheduling of its reference [15]: stage-ins and task
dispatch reserve space first, and the run waits (or deadlocks, if the
capacity is below the workflow's minimum footprint).
"""

import pytest

from repro.sim.executor import simulate
from repro.sim.resources import Storage
from repro.workflow.dag import FileSpec, Task, Workflow
from repro.workflow.generators import chain_workflow, fork_join_workflow

BW = 1.25e6
F = 1.25e6


class TestStorageReservations:
    def test_reserve_and_materialize(self):
        s = Storage(capacity_bytes=100.0)
        assert s.reserve(60.0)
        assert s.committed_bytes == 60.0
        assert not s.reserve(50.0)  # would exceed
        s.add("a", 60.0, 0.0)
        s.release_reservation(60.0)
        assert s.committed_bytes == 60.0
        assert s.fits(40.0)
        assert not s.fits(41.0)

    def test_space_freed_callbacks(self):
        calls = []
        s = Storage(capacity_bytes=10.0)
        s.subscribe_space_freed(lambda: calls.append("freed"))
        s.add("a", 5.0, 0.0)
        s.remove("a", 1.0)
        assert calls == ["freed"]
        s.reserve(3.0)
        s.release_reservation(3.0)
        assert calls == ["freed", "freed"]

    def test_infinite_capacity_always_fits(self):
        s = Storage()
        assert s.fits(1e18)
        assert s.reserve(1e18)

    def test_validation(self):
        with pytest.raises(ValueError):
            Storage(capacity_bytes=0.0)
        s = Storage(capacity_bytes=10.0)
        with pytest.raises(ValueError):
            s.reserve(-1.0)
        with pytest.raises(RuntimeError):
            s.release_reservation(5.0)  # nothing reserved


class TestConstrainedExecution:
    def test_ample_capacity_identical_to_infinite(self, montage1):
        free = simulate(montage1, 8, "cleanup", record_trace=False)
        capped = simulate(
            montage1, 8, "cleanup",
            storage_capacity_bytes=montage1.total_file_bytes() * 2,
            record_trace=False,
        )
        assert capped.makespan == pytest.approx(free.makespan)
        assert capped.storage_byte_seconds == pytest.approx(
            free.storage_byte_seconds
        )

    def test_tight_capacity_with_cleanup_still_completes(self):
        # chain(4) in cleanup mode needs at most ~3 files at once
        # (current input + output + the staged-out product).
        wf = chain_workflow(4, runtime=10.0, file_size=F)
        r = simulate(
            wf, 1, "cleanup",
            bandwidth_bytes_per_sec=BW,
            storage_capacity_bytes=3 * F,
            record_trace=False,
        )
        assert r.n_task_executions == 4
        assert r.peak_storage_bytes <= 3 * F + 1e-6

    def test_capacity_serializes_wide_stage_in(self):
        # fork-join(6) in cleanup mode: the occupancy curve coalesces
        # same-instant swaps (inputs deleted as mids appear), so the
        # unconstrained end-of-instant peak is 6 files; the *reservation*
        # requirement is stricter — the join must hold its 6 mids plus a
        # reserved output, 7 files — so a capacity of 8 completes (with
        # worker dispatch staggered by admission) and 6.5 deadlocks.
        wf = fork_join_workflow(6, runtime=10.0, file_size=F)
        free = simulate(wf, 6, "cleanup", bandwidth_bytes_per_sec=BW,
                        record_trace=False)
        assert free.peak_storage_bytes == pytest.approx(6 * F)
        capped = simulate(
            wf, 6, "cleanup",
            bandwidth_bytes_per_sec=BW,
            storage_capacity_bytes=8 * F,
            record_trace=False,
        )
        assert capped.n_task_executions == 7
        assert capped.peak_storage_bytes <= 8 * F + 1e-6
        assert capped.makespan >= free.makespan
        # The same bytes still cross the link.
        assert capped.bytes_in == pytest.approx(free.bytes_in)

    def test_infeasible_join_capacity_deadlocks(self):
        # The join needs its 6 mids plus output resident: 7 files; a
        # capacity of 6.5 can never finish.
        wf = fork_join_workflow(6, runtime=10.0, file_size=F)
        with pytest.raises(RuntimeError, match="storage capacity"):
            simulate(
                wf, 6, "cleanup", bandwidth_bytes_per_sec=BW,
                storage_capacity_bytes=6.5 * F, record_trace=False,
            )

    def test_impossible_capacity_reports_deadlock(self):
        wf = chain_workflow(2, runtime=10.0, file_size=F)
        with pytest.raises(RuntimeError, match="storage capacity"):
            simulate(
                wf, 1, "cleanup",
                bandwidth_bytes_per_sec=BW,
                storage_capacity_bytes=0.5 * F,  # no single file fits
                record_trace=False,
            )

    def test_regular_mode_needs_full_footprint(self):
        # Regular mode never deletes, so capacity below the footprint
        # deadlocks even though cleanup would squeeze through.
        wf = chain_workflow(4, runtime=10.0, file_size=F)
        cap = 3 * F
        ok = simulate(
            wf, 1, "cleanup", bandwidth_bytes_per_sec=BW,
            storage_capacity_bytes=cap, record_trace=False,
        )
        assert ok.n_task_executions == 4
        with pytest.raises(RuntimeError, match="storage capacity"):
            simulate(
                wf, 1, "regular", bandwidth_bytes_per_sec=BW,
                storage_capacity_bytes=cap, record_trace=False,
            )

    def test_remote_io_under_capacity(self):
        wf = chain_workflow(3, runtime=10.0, file_size=F)
        r = simulate(
            wf, 1, "remote-io",
            bandwidth_bytes_per_sec=BW,
            storage_capacity_bytes=2 * F,  # one input copy + one output
            record_trace=False,
        )
        assert r.n_task_executions == 3
        assert r.peak_storage_bytes <= 2 * F + 1e-6

    def test_capacity_never_exceeded_montage(self, montage1):
        cap = 700e6  # below the 1.34 GB footprint; cleanup fits
        r = simulate(
            montage1, 8, "cleanup",
            storage_capacity_bytes=cap, record_trace=False,
        )
        assert r.n_task_executions == 203
        assert r.peak_storage_bytes <= cap + 1e-6

    def test_multioutput_task_reservation(self):
        # A task with two outputs must reserve both before dispatch.
        wf = Workflow("two-out")
        wf.add_file(FileSpec("in", F))
        wf.add_file(FileSpec("o1", F))
        wf.add_file(FileSpec("o2", F))
        wf.add_task(Task("t", 10.0, inputs=("in",), outputs=("o1", "o2")))
        r = simulate(
            wf, 1, "cleanup", bandwidth_bytes_per_sec=BW,
            storage_capacity_bytes=3 * F, record_trace=False,
        )
        assert r.peak_storage_bytes <= 3 * F + 1e-6
        with pytest.raises(RuntimeError, match="storage capacity"):
            simulate(
                wf, 1, "cleanup", bandwidth_bytes_per_sec=BW,
                storage_capacity_bytes=2 * F, record_trace=False,
            )
