"""Exact, hand-computed scenarios for the three data-management modes.

All scenarios use a 10 Mbps link (1.25e6 B/s) and files of 1.25 MB so that
every transfer takes exactly 1 second; runtimes are 100 s.  The expected
makespans, byte counts and storage integrals below are worked out by hand
in the comments.
"""

import pytest

from repro.sim.datamanager import DataMode, make_data_manager
from repro.sim.executor import simulate
from repro.workflow.generators import (
    chain_workflow,
    example_figure3_workflow,
    fork_join_workflow,
)

BW = 1.25e6  # 10 Mbps
F = 1.25e6  # file size: 1 second per transfer


def sim(wf, p, mode, **kw):
    return simulate(wf, p, mode, bandwidth_bytes_per_sec=BW, **kw)


class TestRegularChain:
    """chain of 2 tasks: f0 -> t0 -> f1 -> t1 -> f2."""

    @pytest.fixture(scope="class")
    def result(self):
        return sim(chain_workflow(2, runtime=100.0, file_size=F), 1, "regular")

    def test_makespan(self, result):
        # stage-in f0 [0,1]; t0 [1,101]; t1 [101,201]; stage-out f2
        # [201,202].
        assert result.makespan == pytest.approx(202.0)

    def test_transfers(self, result):
        assert result.bytes_in == pytest.approx(F)
        assert result.bytes_out == pytest.approx(F)
        assert result.n_transfers_in == 1
        assert result.n_transfers_out == 1

    def test_storage_byte_seconds(self, result):
        # f0 resident [1,202] = 201 s; f1 [101,202] = 101 s; f2 [201,202]
        # = 1 s; all deleted together at 202.
        assert result.storage_byte_seconds == pytest.approx((201 + 101 + 1) * F)

    def test_peak_storage(self, result):
        assert result.peak_storage_bytes == pytest.approx(3 * F)

    def test_cpu_accounting(self, result):
        assert result.compute_seconds == pytest.approx(200.0)
        assert result.cpu_busy_seconds == pytest.approx(200.0)


class TestCleanupChain:
    @pytest.fixture(scope="class")
    def result(self):
        return sim(chain_workflow(2, runtime=100.0, file_size=F), 1, "cleanup")

    def test_makespan_unchanged_by_cleanup(self, result):
        assert result.makespan == pytest.approx(202.0)

    def test_storage_byte_seconds(self, result):
        # f0 deleted when t0 completes (101): resident [1,101] = 100 s;
        # f1 deleted at 201: 100 s; f2 deleted when staged out at 202: 1 s.
        assert result.storage_byte_seconds == pytest.approx(201 * F)

    def test_transfers_identical_to_regular(self, result):
        # The paper: "the amount of data transfer in the Regular and the
        # Cleanup mode are the same".
        assert result.bytes_in == pytest.approx(F)
        assert result.bytes_out == pytest.approx(F)


class TestRemoteIOChain:
    @pytest.fixture(scope="class")
    def result(self):
        return sim(chain_workflow(2, runtime=100.0, file_size=F), 1, "remote-io")

    def test_makespan(self, result):
        # t0: stage-in f0 [0,1], run [1,101], stage-out f1 [101,102];
        # t1 eligible at 102: stage-in f1 [102,103], run [103,203],
        # stage-out f2 [203,204].
        assert result.makespan == pytest.approx(204.0)

    def test_transfers_count_every_hop(self, result):
        # f0 and f1 staged in; f1 and f2 staged out.
        assert result.bytes_in == pytest.approx(2 * F)
        assert result.bytes_out == pytest.approx(2 * F)

    def test_storage_minimal(self, result):
        # f0 copy [1,101]; f1-out [101,102]; f1 copy [103,203];
        # f2-out [203,204] -> 202 file-seconds.
        assert result.storage_byte_seconds == pytest.approx(202 * F)

    def test_storage_empty_at_end(self, result):
        assert result.storage_curve.final_value() == pytest.approx(0.0)


class TestForkJoinParallel:
    def test_regular_two_processors(self):
        # Dedicated link (GridSim-style): in0 and in1 both arrive at t=1;
        # w0, w1 [1,101]; join [101,201]; stage-out [201,202].
        r = sim(fork_join_workflow(2, runtime=100.0, file_size=F), 2, "regular")
        assert r.makespan == pytest.approx(202.0)

    def test_regular_two_processors_contended_link(self):
        # FIFO link ablation: in0 [0,1], in1 [1,2]; w0 [1,101],
        # w1 [2,102]; join [102,202]; stage-out [202,203].
        r = simulate(
            fork_join_workflow(2, runtime=100.0, file_size=F), 2, "regular",
            bandwidth_bytes_per_sec=BW, link_contention=True,
        )
        assert r.makespan == pytest.approx(203.0)

    def test_regular_one_processor_serializes(self):
        # w0 [1,101], w1 [101,201], join [201,301], out [301,302].
        r = sim(fork_join_workflow(2, runtime=100.0, file_size=F), 1, "regular")
        assert r.makespan == pytest.approx(302.0)

    def test_extra_processors_do_not_help(self):
        wide = fork_join_workflow(4, runtime=100.0, file_size=F)
        r4 = sim(wide, 4, "regular")
        r99 = sim(wide, 99, "regular")
        assert r4.makespan == pytest.approx(r99.makespan)

    def test_remote_io_shares_link_fairly(self):
        # Two workers on 2 procs, remote I/O: each stages in its own input
        # (serialized on the link), runs, stages out its mid; the join then
        # stages in both mids.
        r = sim(fork_join_workflow(2, runtime=100.0, file_size=F), 2, "remote-io")
        # in: in0, in1, mid0, mid1; out: mid0, mid1, out
        assert r.bytes_in == pytest.approx(4 * F)
        assert r.bytes_out == pytest.approx(3 * F)


class TestFigure3Modes:
    """The paper's Figure 3 workflow under all three modes."""

    @pytest.fixture(scope="class")
    def wf(self):
        return example_figure3_workflow(runtime=100.0, file_size=F)

    def test_regular_transfer_volumes(self, wf):
        r = sim(wf, 7, "regular")
        assert r.bytes_in == pytest.approx(F)  # only file a
        assert r.bytes_out == pytest.approx(2 * F)  # g and h

    def test_remote_transfer_volumes(self, wf):
        r = sim(wf, 7, "remote-io")
        # ins: a; b twice (tasks 1,2); c twice (3,4); d once; e,f,h for
        # task 6 -> 9 file movements in.
        assert r.bytes_in == pytest.approx(9 * F)
        # outs: every produced file once: b,c,d,e,f,h,g -> 7.
        assert r.bytes_out == pytest.approx(7 * F)

    def test_cleanup_beats_regular_storage(self, wf):
        reg = sim(wf, 7, "regular")
        cln = sim(wf, 7, "cleanup")
        assert cln.storage_byte_seconds < reg.storage_byte_seconds
        assert cln.makespan == pytest.approx(reg.makespan)

    def test_mode_ordering(self, wf):
        """cleanup <= regular on storage; remote moves the most data.

        (Remote I/O's storage advantage is a property of wide workflows
        with heavily shared files, like Montage — Figure 7; it does not
        hold for this tiny example, where per-task input copies resident
        for whole runtimes outweigh the shared files.  The Montage-level
        ranking is asserted in tests/sim/test_integration_montage.py.)
        """
        rem = sim(wf, 7, "remote-io")
        cln = sim(wf, 7, "cleanup")
        reg = sim(wf, 7, "regular")
        assert cln.storage_byte_seconds <= reg.storage_byte_seconds
        assert rem.bytes_in > reg.bytes_in
        assert rem.bytes_out > reg.bytes_out


class TestFactory:
    def test_make_by_string_and_enum(self):
        assert make_data_manager("regular").mode is DataMode.REGULAR
        assert make_data_manager(DataMode.CLEANUP).mode is DataMode.CLEANUP
        assert make_data_manager("remote-io").mode is DataMode.REMOTE_IO

    def test_unknown_mode(self):
        with pytest.raises(ValueError):
            make_data_manager("turbo")
