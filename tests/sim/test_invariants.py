"""Property-based simulator invariants over random layered workflows.

These are the guarantees the paper's analysis relies on:

* the regular and cleanup modes move identical bytes and finish at the
  same time; cleanup only ever shrinks the storage integral;
* remote I/O moves at least as many bytes in each direction as regular
  (files re-cross the link once per consumer; intermediates flow out);
* makespan is bounded below by the critical path and by total-work/P;
* storage drains to zero and the measured byte totals match the workflow's
  static file accounting.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.sim.executor import simulate
from repro.workflow.analysis import critical_path_length
from repro.workflow.generators import random_layered_workflow

BW = 1.25e6

workflow_params = st.tuples(
    st.integers(1, 4),      # layers
    st.integers(1, 5),      # width
    st.integers(0, 10_000),  # seed
    st.floats(0.2, 1.0),    # edge density
)
processors = st.integers(1, 8)


def _build(params):
    layers, width, seed, density = params
    return random_layered_workflow(
        layers, width, seed=seed, edge_density=density,
        mean_runtime=50.0, mean_file_size=2e6,
    )


@settings(max_examples=40, deadline=None)
@given(params=workflow_params, p=processors)
def test_regular_vs_cleanup(params, p):
    wf = _build(params)
    reg = simulate(wf, p, "regular", bandwidth_bytes_per_sec=BW)
    cln = simulate(wf, p, "cleanup", bandwidth_bytes_per_sec=BW)
    # Identical timing and transfers (paper, Section 6 / Figure 7 middle).
    assert cln.makespan == pytest.approx(reg.makespan, rel=1e-9)
    assert cln.bytes_in == pytest.approx(reg.bytes_in)
    assert cln.bytes_out == pytest.approx(reg.bytes_out)
    # Cleanup can only reduce occupancy.
    assert cln.storage_byte_seconds <= reg.storage_byte_seconds + 1e-6
    assert cln.peak_storage_bytes <= reg.peak_storage_bytes + 1e-6


@settings(max_examples=40, deadline=None)
@given(params=workflow_params, p=processors)
def test_remote_moves_at_least_as_much(params, p):
    wf = _build(params)
    reg = simulate(wf, p, "regular", bandwidth_bytes_per_sec=BW)
    rem = simulate(wf, p, "remote-io", bandwidth_bytes_per_sec=BW)
    assert rem.bytes_in >= reg.bytes_in - 1e-6
    assert rem.bytes_out >= reg.bytes_out - 1e-6


@settings(max_examples=40, deadline=None)
@given(params=workflow_params, p=processors)
def test_makespan_lower_bounds(params, p):
    wf = _build(params)
    for mode in ("regular", "cleanup", "remote-io"):
        r = simulate(wf, p, mode, bandwidth_bytes_per_sec=BW)
        assert r.makespan >= critical_path_length(wf) - 1e-9
        assert r.makespan >= wf.total_runtime() / p - 1e-9


@settings(max_examples=40, deadline=None)
@given(params=workflow_params, p=processors)
def test_static_byte_accounting(params, p):
    wf = _build(params)
    reg = simulate(wf, p, "regular", bandwidth_bytes_per_sec=BW)
    # Regular mode stages in exactly the initial inputs and stages out
    # exactly the net outputs, each once.
    assert reg.bytes_in == pytest.approx(wf.input_bytes())
    assert reg.bytes_out == pytest.approx(wf.output_bytes())

    rem = simulate(wf, p, "remote-io", bandwidth_bytes_per_sec=BW)
    expected_in = sum(
        wf.file(f).size_bytes for t in wf.tasks.values() for f in t.inputs
    )
    expected_out = sum(
        wf.file(f).size_bytes for t in wf.tasks.values() for f in t.outputs
    )
    assert rem.bytes_in == pytest.approx(expected_in)
    assert rem.bytes_out == pytest.approx(expected_out)


@settings(max_examples=40, deadline=None)
@given(params=workflow_params, p=processors)
def test_storage_drains_and_utilization_bounded(params, p):
    wf = _build(params)
    for mode in ("regular", "cleanup", "remote-io"):
        r = simulate(wf, p, mode, bandwidth_bytes_per_sec=BW)
        assert r.storage_curve.final_value() == pytest.approx(0.0, abs=1e-6)
        assert 0.0 <= r.utilization <= 1.0 + 1e-9
        assert r.compute_seconds == pytest.approx(wf.total_runtime())
        # Storage never holds more than one copy of every file (remote
        # I/O reference-counts shared residency).
        assert r.peak_storage_bytes <= wf.total_file_bytes() * (1 + 1e-9)


@settings(max_examples=25, deadline=None)
@given(params=workflow_params)
def test_enough_processors_saturate(params):
    """Beyond n_tasks processors, adding more cannot change anything."""
    wf = _build(params)
    n = len(wf.tasks)
    a = simulate(wf, n, "regular", bandwidth_bytes_per_sec=BW)
    b = simulate(wf, n + 7, "regular", bandwidth_bytes_per_sec=BW)
    assert a.makespan == pytest.approx(b.makespan, rel=1e-12)
    assert a.storage_byte_seconds == pytest.approx(
        b.storage_byte_seconds, rel=1e-12
    )


@settings(max_examples=25, deadline=None)
@given(params=workflow_params, p=processors)
def test_determinism(params, p):
    wf = _build(params)
    a = simulate(wf, p, "remote-io", bandwidth_bytes_per_sec=BW)
    b = simulate(wf, p, "remote-io", bandwidth_bytes_per_sec=BW)
    assert a.makespan == b.makespan
    assert a.storage_byte_seconds == b.storage_byte_seconds
    assert [r.task_id for r in a.task_records] == [
        r.task_id for r in b.task_records
    ]
