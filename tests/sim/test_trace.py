"""Trace-analysis tests."""

import pytest

from repro.sim.executor import simulate
from repro.sim.trace import (
    gantt_chart,
    storage_curve_csv,
    task_records_csv,
    transfer_records_csv,
    transformation_stats,
    write_trace_files,
)
from repro.workflow.generators import chain_workflow, fork_join_workflow

BW = 1.25e6
F = 1.25e6


@pytest.fixture(scope="module")
def result():
    return simulate(
        fork_join_workflow(4, runtime=100.0, file_size=F), 2,
        bandwidth_bytes_per_sec=BW,
    )


class TestTransformationStats:
    def test_counts_and_totals(self, result):
        stats = transformation_stats(result)
        assert stats["worker"].count == 4
        assert stats["worker"].total_seconds == pytest.approx(400.0)
        assert stats["worker"].mean_seconds == pytest.approx(100.0)
        assert stats["join"].count == 1

    def test_time_windows_ordered(self, result):
        stats = transformation_stats(result)
        # join starts after the last worker finishes
        assert stats["join"].first_start >= stats["worker"].last_end - 1e-9

    def test_montage_stats(self, montage1):
        r = simulate(montage1, 16)
        stats = transformation_stats(r)
        assert stats["mProject"].count == 40
        assert stats["mDiffFit"].count == 118
        assert stats["mAdd"].count == 1
        # mAdd runs last of the wave types
        assert stats["mAdd"].first_start > stats["mProject"].last_end

    def test_requires_trace(self, montage1):
        r = simulate(montage1, 4, record_trace=False)
        with pytest.raises(ValueError, match="record_trace"):
            transformation_stats(r)


class TestGantt:
    def test_lane_count_matches_processors_used(self, result):
        chart = gantt_chart(result)
        # 2 processors -> exactly 2 lanes of work
        assert "p000 |" in chart
        assert "p001 |" in chart
        assert "p002 |" not in chart

    def test_legend_lists_transformations(self, result):
        chart = gantt_chart(result)
        assert "A=worker" in chart
        assert "B=join" in chart

    def test_chain_uses_single_lane(self):
        r = simulate(chain_workflow(5, runtime=10.0, file_size=F), 3,
                     bandwidth_bytes_per_sec=BW)
        chart = gantt_chart(r)
        assert "p001" not in chart

    def test_max_lanes_summarized(self):
        wf = fork_join_workflow(40, runtime=10.0, file_size=0.0)
        r = simulate(wf, 40, bandwidth_bytes_per_sec=BW)
        chart = gantt_chart(r, max_lanes=8)
        assert "more lanes" in chart

    def test_empty_workflow(self):
        from repro.workflow.dag import Workflow

        r = simulate(Workflow("empty"), 1)
        assert "no tasks" in gantt_chart(r)


class TestCSVExports:
    def test_task_csv_rows(self, result):
        lines = task_records_csv(result).strip().splitlines()
        assert lines[0].startswith("task_id,")
        assert len(lines) == 1 + 5  # header + 5 tasks

    def test_transfer_csv_rows(self, result):
        lines = transfer_records_csv(result).strip().splitlines()
        # 4 stage-ins + 1 stage-out
        assert len(lines) == 1 + 5
        assert "in" in lines[1]

    def test_storage_csv_parses(self, result):
        lines = storage_curve_csv(result).strip().splitlines()
        assert lines[0] == "time,bytes"
        times = [float(row.split(",")[0]) for row in lines[1:]]
        assert times == sorted(times)

    def test_storage_csv_requires_curve(self, montage1):
        r = simulate(montage1, 4, record_trace=False)
        with pytest.raises(ValueError, match="storage curve"):
            storage_curve_csv(r)

    def test_write_trace_files(self, result, tmp_path):
        paths = write_trace_files(result, tmp_path / "trace")
        assert [p.name for p in paths] == [
            "tasks.csv", "transfers.csv", "storage.csv",
        ]
        for p in paths:
            assert p.exists()
            assert p.read_text().strip()
