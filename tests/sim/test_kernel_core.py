"""The SoA numeric replay core: backend resolution, parity, forking.

Three groups of guarantees:

1. **Backend plumbing** — ``REPRO_SIM_JIT`` resolution (auto/on/off and
   rejection of anything else), clean fallback when ``import numba``
   raises (monkeypatched — the real module is absent in CI's default
   leg anyway), a warning-free ``off`` path that never imports numba,
   and exactly one ``RuntimeWarning`` for an honored-but-interpreted
   ``on``.
2. **Loop parity** — :func:`repro.sim.kernel_core.turbo_fifo_replay`
   and :func:`repro.sim.kernel_core.turbo_soa` must equal the legacy
   ``_run_turbo_core`` tuple-for-tuple (floats bit-exact) on generated
   DAGs, with and without failure verdicts, abort messages included;
   checkpoint forks must equal from-scratch replays; and the whole
   Monte Carlo grid must be invariant to ``REPRO_SIM_JIT``.
3. **Draw-stream pinning** — ``_SeedDraws`` must materialize exactly
   ``default_rng(seed).random(n)`` whatever growth pattern produced the
   buffer, so the vectorized pre-draw stays bit-identical to the
   engine's mid-flight draws.
"""

import builtins
import warnings

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.sim import kernel_core
from repro.sim.datamanager import DataMode
from repro.sim.executor import ExecutionEnvironment
from repro.sim.failures import FailureModel, WorkflowAbortedError
from repro.sim.kernel import (
    KernelConfig,
    _failure_hook,
    _lowering,
    _run_turbo_core,
    _SeedDraws,
    _verdict_fixpoint,
    run_monte_carlo,
)
from repro.sim.scheduler import FIFO_ORDER

from tests.strategies import workflows


@pytest.fixture(autouse=True)
def _fresh_backend(monkeypatch):
    """Isolate backend resolution from the ambient environment."""
    monkeypatch.delenv(kernel_core.JIT_ENV, raising=False)
    kernel_core._invalidate_backend()
    yield
    kernel_core._invalidate_backend()


# ------------------------------------------------------------------ #
# backend resolution
# ------------------------------------------------------------------ #
def test_resolve_jit_defaults_and_env(monkeypatch):
    assert kernel_core.resolve_jit() == "auto"
    assert kernel_core.resolve_jit("off") == "off"
    monkeypatch.setenv(kernel_core.JIT_ENV, "ON")
    assert kernel_core.resolve_jit() == "on"
    monkeypatch.setenv(kernel_core.JIT_ENV, "")
    assert kernel_core.resolve_jit() == "auto"


def test_resolve_jit_rejects_unknown(monkeypatch):
    monkeypatch.setenv(kernel_core.JIT_ENV, "fast")
    with pytest.raises(ValueError, match="unknown JIT mode"):
        kernel_core.resolve_jit()
    with pytest.raises(ValueError, match="unknown JIT mode"):
        kernel_core.resolve_jit("numba")


def _break_numba(monkeypatch):
    real_import = builtins.__import__

    def broken(name, *args, **kwargs):
        if name == "numba" or name.startswith("numba."):
            raise ImportError("numba deliberately broken for this test")
        return real_import(name, *args, **kwargs)

    monkeypatch.setattr(builtins, "__import__", broken)


def test_auto_without_numba_falls_back_silently(monkeypatch):
    _break_numba(monkeypatch)
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        backend = kernel_core.jit_backend()
    assert backend["mode"] == "auto"
    assert backend["use_core"] is False
    assert backend["compiled"] is False
    assert "numba unavailable" in backend["reason"]
    assert kernel_core.jit_enabled() is False


def test_on_without_numba_warns_once_and_interprets(monkeypatch):
    _break_numba(monkeypatch)
    monkeypatch.setenv(kernel_core.JIT_ENV, "on")
    with pytest.warns(RuntimeWarning, match="numba is not importable"):
        backend = kernel_core.jit_backend()
    assert backend["use_core"] is True
    assert backend["compiled"] is False
    # Memoized: the warning fires once, not per run.
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        assert kernel_core.jit_enabled() is True


def test_off_is_warning_free_and_never_imports_numba(monkeypatch):
    real_import = builtins.__import__
    imported = []

    def spying(name, *args, **kwargs):
        if name == "numba" or name.startswith("numba."):
            imported.append(name)
        return real_import(name, *args, **kwargs)

    monkeypatch.setattr(builtins, "__import__", spying)
    monkeypatch.setenv(kernel_core.JIT_ENV, "off")
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        backend = kernel_core.jit_backend()
        assert kernel_core.jit_enabled() is False
    assert backend["use_core"] is False
    assert imported == []


# ------------------------------------------------------------------ #
# draw-stream pinning (_SeedDraws)
# ------------------------------------------------------------------ #
def test_seed_draws_sequence():
    """arr[:n] must equal default_rng(seed).random(n) for every growth
    path — the regression test pinning the Monte Carlo draw stream."""
    for seed in (0, 7, 123):
        stream = _SeedDraws(seed, n0=64, chunk=64)
        stream.extend()
        stream.ensure(1000)
        stream.extend()
        ref = np.random.default_rng(seed).random(stream.n)
        assert stream.arr.shape == ref.shape
        assert np.array_equal(stream.arr, ref)


def test_seed_draws_arr_is_view_not_copy():
    stream = _SeedDraws(3, n0=64, chunk=64)
    assert stream.arr.base is stream.buf


def test_seed_draws_flags_cached_and_invalidated():
    stream = _SeedDraws(1, n0=64, chunk=64)
    f1 = stream.flags(0.25)
    assert stream.flags(0.25) is f1
    ref = np.less(stream.arr, 0.25)
    assert np.array_equal(f1, ref)
    stream.extend()
    f2 = stream.flags(0.25)
    assert f2 is not f1
    assert f2.shape[0] == stream.n
    assert np.array_equal(f2[:64], f1)


def test_verdict_fixpoint_is_least_fixpoint():
    for seed in range(10):
        stream = _SeedDraws(seed, n0=64, chunk=64)
        n_tasks = 20
        flags, L, nf = _verdict_fixpoint(stream, 0.3, n_tasks)
        assert L == n_tasks + int(np.count_nonzero(flags[:L]))
        assert nf == int(np.count_nonzero(flags[:L]))
        for smaller in range(n_tasks, L):
            assert smaller != n_tasks + int(
                np.count_nonzero(flags[:smaller])
            )


# ------------------------------------------------------------------ #
# loop parity: interpreted replay / SoA core vs legacy turbo loop
# ------------------------------------------------------------------ #
def _legacy_and_core(wf, n_proc, mode, boot, seed, probability):
    """Run one cell through the legacy loop, the resumable replay, the
    SoA core, and (when failing) a checkpoint fork; return all outcomes
    as (tuple | None, abort_message | None) pairs."""
    env = ExecutionEnvironment(
        n_processors=n_proc, record_trace=False,
        compute_ready_seconds=boot,
    )
    low = _lowering(wf)
    tr_dur = low.transfer_durations(env.bandwidth_bytes_per_sec)
    exec_dur = low.exec_durations(env.task_overhead_seconds)
    sched = low.arrival_schedule(env.bandwidth_bytes_per_sec)
    cleanup = mode is DataMode.CLEANUP
    max_retries = 2

    def run(fn):
        try:
            return fn(), None
        except WorkflowAbortedError as exc:
            return None, str(exc)

    if probability > 0.0:
        fm = FailureModel(probability, seed=seed, max_retries=max_retries)
        fail = _failure_hook(low, fm)
        stream = _SeedDraws(seed, n0=64, chunk=64)
        flags, L, nf = _verdict_fixpoint(stream, probability, low.n_tasks)
        verdicts = flags[:L]
    else:
        fail = None
        verdicts = None
        nf = 0

    legacy = run(lambda: _run_turbo_core(
        wf, low, env, mode, FIFO_ORDER, tr_dur, exec_dur, fail
    ))
    replay = run(lambda: kernel_core.turbo_fifo_replay(
        low, env.n_processors, env.compute_ready_seconds, cleanup,
        tr_dur, exec_dur, sched, verdicts=verdicts,
        max_retries=max_retries,
    ))
    soa = run(lambda: kernel_core.turbo_soa(
        low, env, cleanup, verdicts=verdicts, max_retries=max_retries
    ))
    outcomes = [legacy, replay, soa]

    if nf:
        snaps: list = []
        kernel_core.turbo_fifo_replay(
            low, env.n_processors, env.compute_ready_seconds, cleanup,
            tr_dur, exec_dur, sched,
            snap_every=kernel_core.SNAP_EVERY, snapshots=snaps,
        )
        first = int(np.argmax(verdicts))
        j = min(first // kernel_core.SNAP_EVERY, len(snaps) - 1)
        fork = run(lambda: kernel_core.turbo_fifo_replay(
            low, env.n_processors, env.compute_ready_seconds, cleanup,
            tr_dur, exec_dur, sched, verdicts=flags,
            max_retries=max_retries, resume=snaps[j],
        ))
        outcomes.append(fork)
    return outcomes


@settings(max_examples=60, deadline=None)
@given(
    wf=workflows(),
    p=st.integers(1, 6),
    mode=st.sampled_from((DataMode.REGULAR, DataMode.CLEANUP)),
    boot=st.sampled_from([0.0, 10.0]),
)
def test_core_loops_identical_no_failures(wf, p, mode, boot):
    outcomes = _legacy_and_core(wf, p, mode, boot, seed=0, probability=0.0)
    ref = outcomes[0]
    assert ref[1] is None
    for other in outcomes[1:]:
        assert other == ref


@settings(max_examples=60, deadline=None)
@given(
    wf=workflows(),
    p=st.integers(1, 6),
    mode=st.sampled_from((DataMode.REGULAR, DataMode.CLEANUP)),
    seed=st.integers(0, 50),
    probability=st.sampled_from([0.05, 0.2, 0.45]),
)
def test_core_loops_identical_under_failures(wf, p, mode, seed, probability):
    outcomes = _legacy_and_core(
        wf, p, mode, 0.0, seed=seed, probability=probability
    )
    ref = outcomes[0]
    for other in outcomes[1:]:
        assert other == ref


def test_fork_matches_scratch_on_montage_plate():
    """Every failing seed of a real plate forks bit-identically."""
    from repro.montage.generator import montage_workflow

    wf = montage_workflow(1.0)
    checked = 0
    for seed in range(25):
        outcomes = _legacy_and_core(
            wf, 8, DataMode.REGULAR, 0.0, seed=seed, probability=0.02
        )
        ref = outcomes[0]
        for other in outcomes[1:]:
            assert other == ref
        checked += len(outcomes) - 1
    assert checked >= 25


# ------------------------------------------------------------------ #
# Monte Carlo invariance to the backend
# ------------------------------------------------------------------ #
def _mc_cells(wf, jit, monkeypatch):
    monkeypatch.setenv(kernel_core.JIT_ENV, jit)
    kernel_core._invalidate_backend()
    env = ExecutionEnvironment(n_processors=4, record_trace=False)
    cfg = KernelConfig(environment=env)
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", RuntimeWarning)
        return run_monte_carlo(
            wf, cfg, (0.0, 0.05, 0.3), range(12), max_retries=1
        )


def test_monte_carlo_invariant_to_backend(monkeypatch):
    from repro.montage.generator import montage_workflow

    wf = montage_workflow(0.5)
    off = _mc_cells(wf, "off", monkeypatch)
    on = _mc_cells(wf, "on", monkeypatch)
    assert len(off) == len(on)
    saw_abort = saw_failure = False
    for a, b in zip(off, on):
        assert (a.probability, a.seed) == (b.probability, b.seed)
        assert a.aborted == b.aborted
        assert a.abort_message == b.abort_message
        assert a.result == b.result
        saw_abort = saw_abort or a.aborted
        if a.result is not None:
            saw_failure = saw_failure or a.result.n_task_failures > 0
    assert saw_failure  # the grid exercised the verdict path


def test_monte_carlo_abort_message_verbatim():
    """Grid aborts carry the engine's exact message under the core."""
    from repro.montage.generator import montage_workflow

    wf = montage_workflow(0.5)
    env = ExecutionEnvironment(n_processors=4, record_trace=False)
    cfg = KernelConfig(environment=env)
    cells = run_monte_carlo(
        wf, cfg, (0.45,), range(30), max_retries=0
    )
    aborted = [c for c in cells if c.aborted]
    assert aborted
    for cell in aborted:
        fm = FailureModel(0.45, seed=cell.seed, max_retries=0)
        from repro.sim import simulate

        with pytest.raises(WorkflowAbortedError) as err:
            simulate(
                wf, 4, record_trace=False, failures=fm, kernel="event"
            )
        assert cell.abort_message == str(err.value)
