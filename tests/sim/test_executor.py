"""Executor-level tests: scheduling, records, environments, edge cases."""

import pytest

from repro.sim.executor import (
    DEFAULT_BANDWIDTH,
    ExecutionEnvironment,
    WorkflowExecutor,
    simulate,
)
from repro.util.units import MBPS
from repro.workflow.dag import FileSpec, Task, Workflow
from repro.workflow.generators import chain_workflow, fork_join_workflow

BW = 1.25e6
F = 1.25e6


class TestBasics:
    def test_empty_workflow(self):
        r = simulate(Workflow("empty"), 1)
        assert r.makespan == 0.0
        assert r.bytes_in == 0.0
        assert r.n_task_executions == 0

    def test_default_bandwidth_is_papers(self):
        assert DEFAULT_BANDWIDTH == 10 * MBPS

    def test_compute_seconds_equals_total_runtime(self):
        wf = fork_join_workflow(5, runtime=7.0)
        r = simulate(wf, 3)
        assert r.compute_seconds == pytest.approx(wf.total_runtime())

    def test_task_records_cover_every_task(self):
        wf = fork_join_workflow(3)
        r = simulate(wf, 2)
        assert {rec.task_id for rec in r.task_records} == set(wf.tasks)
        for rec in r.task_records:
            assert rec.end - rec.start == pytest.approx(
                wf.task(rec.task_id).runtime
            )
            assert rec.attempt == 1

    def test_record_trace_off_drops_records(self):
        r = simulate(chain_workflow(3), 1, record_trace=False)
        assert r.task_records == []
        assert r.transfer_records == []
        assert r.storage_curve is None
        # ...but the scalar metrics are still measured.
        assert r.makespan > 0
        assert r.storage_byte_seconds > 0

    def test_transfer_records(self):
        wf = chain_workflow(1, runtime=10.0, file_size=F)
        r = simulate(wf, 1, bandwidth_bytes_per_sec=BW)
        recs = {(t.file_name, t.direction) for t in r.transfer_records}
        assert recs == {("f0", "in"), ("f1", "out")}
        for t in r.transfer_records:
            assert t.end - t.start == pytest.approx(1.0)

    def test_dependencies_always_respected(self):
        wf = chain_workflow(5)
        r = simulate(wf, 4)
        ends = {rec.task_id: rec.end for rec in r.task_records}
        starts = {rec.task_id: rec.start for rec in r.task_records}
        for i in range(1, 5):
            assert starts[f"t{i}"] >= ends[f"t{i-1}"] - 1e-9

    def test_tasks_by_transformation(self):
        wf = fork_join_workflow(4)
        r = simulate(wf, 2)
        groups = r.tasks_by_transformation()
        assert len(groups["worker"]) == 4
        assert len(groups["join"]) == 1

    def test_summary_mentions_key_numbers(self):
        r = simulate(chain_workflow(2), 1)
        text = r.summary()
        assert "chain" in text
        assert "regular" in text


class TestEnvironments:
    def test_bandwidth_scales_transfer_time(self):
        wf = chain_workflow(1, runtime=10.0, file_size=F)
        slow = simulate(wf, 1, bandwidth_bytes_per_sec=BW)
        fast = simulate(wf, 1, bandwidth_bytes_per_sec=10 * BW)
        # makespan: 1 + 10 + 1 = 12 vs 0.1 + 10 + 0.1 = 10.2
        assert slow.makespan == pytest.approx(12.0)
        assert fast.makespan == pytest.approx(10.2)

    def test_separate_links_never_slower(self):
        wf = fork_join_workflow(6, runtime=5.0, file_size=10 * F)
        shared = simulate(wf, 6, bandwidth_bytes_per_sec=BW)
        split = simulate(
            wf, 6, bandwidth_bytes_per_sec=BW, separate_links=True
        )
        assert split.bytes_in == pytest.approx(shared.bytes_in)
        assert split.bytes_out == pytest.approx(shared.bytes_out)
        assert split.makespan <= shared.makespan + 1e-9

    def test_invalid_processor_count(self):
        with pytest.raises(ValueError):
            simulate(chain_workflow(1), 0)


class TestUtilization:
    def test_single_processor_nearly_fully_busy(self):
        r = simulate(chain_workflow(10, runtime=100.0, file_size=F), 1,
                     bandwidth_bytes_per_sec=BW)
        # busy 1000 s of a 1002 s makespan
        assert r.utilization == pytest.approx(1000.0 / 1002.0)

    def test_overprovisioning_wastes_processors(self):
        wf = chain_workflow(4, runtime=100.0, file_size=F)
        r = simulate(wf, 8, bandwidth_bytes_per_sec=BW)
        # chain only ever uses one processor
        assert r.utilization == pytest.approx(400.0 / (8 * r.makespan))


class TestProgrammaticUse:
    def test_executor_object_api(self):
        env = ExecutionEnvironment(n_processors=2, bandwidth_bytes_per_sec=BW)
        ex = WorkflowExecutor(chain_workflow(2, file_size=F), env, "cleanup")
        result = ex.run()
        assert result.data_mode == "cleanup"
        assert result.n_processors == 2

    def test_invalid_workflow_rejected_up_front(self):
        wf = Workflow("bad")
        wf.add_file(FileSpec("orphan", 1.0))
        env = ExecutionEnvironment(n_processors=1)
        with pytest.raises(Exception, match="neither"):
            WorkflowExecutor(wf, env)

    def test_task_without_inputs_runs_immediately(self):
        wf = Workflow("noin")
        wf.add_file(FileSpec("out", F))
        wf.add_task(Task("gen", 10.0, inputs=(), outputs=("out",)))
        r = simulate(wf, 1, bandwidth_bytes_per_sec=BW)
        # run [0,10], stage-out [10,11]
        assert r.makespan == pytest.approx(11.0)
        assert r.bytes_in == 0.0

    def test_task_without_outputs(self):
        wf = Workflow("noout")
        wf.add_file(FileSpec("in", F))
        wf.add_task(Task("sink", 10.0, inputs=("in",), outputs=()))
        r = simulate(wf, 1, bandwidth_bytes_per_sec=BW)
        # stage-in [0,1], run [1,11]; nothing to stage out
        assert r.makespan == pytest.approx(11.0)
        assert r.bytes_out == 0.0

    def test_remote_io_task_without_outputs_finishes(self):
        wf = Workflow("noout")
        wf.add_file(FileSpec("in", F))
        wf.add_task(Task("sink", 10.0, inputs=("in",), outputs=()))
        r = simulate(wf, 1, "remote-io", bandwidth_bytes_per_sec=BW)
        assert r.makespan == pytest.approx(11.0)
