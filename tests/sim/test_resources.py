"""Resource tests: processor pool, storage accounting, network link."""

import pytest

from repro.sim.resources import NetworkLink, ProcessorPool, Storage


class TestProcessorPool:
    def test_acquire_release_accounting(self):
        pool = ProcessorPool(2)
        assert pool.available == 2
        pool.acquire(0.0)
        pool.acquire(1.0)
        assert pool.available == 0
        pool.release(3.0)
        assert pool.busy == 1
        pool.release(5.0)
        # busy-seconds: [0,1): 1 proc, [1,3): 2, [3,5): 1
        assert pool.busy_processor_seconds(0.0, 5.0) == pytest.approx(
            1 + 4 + 2
        )

    def test_over_acquire_raises(self):
        pool = ProcessorPool(1)
        pool.acquire(0.0)
        with pytest.raises(RuntimeError):
            pool.acquire(0.0)

    def test_over_release_raises(self):
        with pytest.raises(RuntimeError):
            ProcessorPool(1).release(0.0)

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            ProcessorPool(0)


class TestStorage:
    def test_add_remove_and_integral(self):
        s = Storage()
        s.add("a", 100.0, 0.0)
        s.add("b", 50.0, 2.0)
        s.remove("a", 4.0)
        s.remove("b", 6.0)
        # [0,2): 100, [2,4): 150, [4,6): 50
        assert s.byte_seconds(0.0, 6.0) == pytest.approx(200 + 300 + 100)
        assert s.peak_bytes() == 150.0
        assert s.n_objects == 0

    def test_duplicate_key_rejected(self):
        s = Storage()
        s.add("a", 1.0, 0.0)
        with pytest.raises(RuntimeError):
            s.add("a", 1.0, 1.0)

    def test_remove_missing_rejected(self):
        with pytest.raises(RuntimeError):
            Storage().remove("ghost", 0.0)

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            Storage().add("a", -1.0, 0.0)

    def test_tuple_keys_for_copies(self):
        s = Storage()
        s.add(("t1", "f"), 10.0, 0.0)
        s.add(("t2", "f"), 10.0, 0.0)
        assert s.bytes_used == 20.0
        assert ("t1", "f") in s


class TestNetworkLink:
    def test_dedicated_transfers_do_not_queue(self):
        link = NetworkLink(100.0)  # 100 B/s, GridSim-style default
        t1 = link.request(200.0, now=0.0, direction="in")
        t2 = link.request(100.0, now=0.0, direction="in")
        assert t1 == pytest.approx(2.0)
        assert t2 == pytest.approx(1.0)  # concurrent, full bandwidth
        assert link.busy_until == pytest.approx(2.0)

    def test_fifo_serialization_when_contended(self):
        link = NetworkLink(100.0, contended=True)
        t1 = link.request(200.0, now=0.0, direction="in")
        t2 = link.request(100.0, now=0.0, direction="in")
        assert t1 == pytest.approx(2.0)
        assert t2 == pytest.approx(3.0)  # queued behind the first

    def test_idle_gap_resets_clock(self):
        link = NetworkLink(100.0, contended=True)
        link.request(100.0, now=0.0, direction="in")
        t = link.request(100.0, now=10.0, direction="out")
        assert t == pytest.approx(11.0)

    def test_byte_and_request_accounting(self):
        link = NetworkLink(10.0)
        link.request(5.0, 0.0, "in")
        link.request(7.0, 0.0, "in")
        link.request(3.0, 0.0, "out")
        assert link.total_bytes("in") == 12.0
        assert link.total_bytes("out") == 3.0
        assert link.total_requests("in") == 2
        assert link.total_requests("out") == 1

    def test_zero_size_transfer_is_instant(self):
        link = NetworkLink(10.0)
        assert link.request(0.0, 5.0, "in") == 5.0

    def test_invalid_bandwidth(self):
        with pytest.raises(ValueError):
            NetworkLink(0.0)

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            NetworkLink(1.0).request(-1.0, 0.0, "in")


class TestReleaseSubscriptions:
    def test_unsubscribe_stops_wakeups(self):
        pool = ProcessorPool(1)
        calls = []
        pool.subscribe_release(lambda: calls.append("a"))
        pool.acquire(0.0)
        pool.release(1.0)
        assert calls == ["a"]
        pool.unsubscribe_release(next(iter(pool._release_subscribers)))
        pool.acquire(2.0)
        pool.release(3.0)
        assert calls == ["a"]

    def test_unsubscribe_unknown_callback_is_noop(self):
        pool = ProcessorPool(1)
        pool.unsubscribe_release(lambda: None)

    def test_unsubscribe_during_notification_is_safe(self):
        pool = ProcessorPool(1)
        calls = []

        def self_removing():
            calls.append("x")
            pool.unsubscribe_release(self_removing)

        pool.subscribe_release(self_removing)
        pool.subscribe_release(lambda: calls.append("y"))
        pool.acquire(0.0)
        pool.release(1.0)
        assert calls == ["x", "y"]
        pool.acquire(2.0)
        pool.release(3.0)
        assert calls == ["x", "y", "y"]

    def test_finished_executors_unsubscribe_from_shared_pool(self):
        # Regression: finished service-mode executors used to stay
        # subscribed forever, so every release woke every dead
        # dispatcher (O(completed requests) per release).
        from repro.sim.engine import SimulationEngine
        from repro.sim.executor import ExecutionEnvironment, WorkflowExecutor
        from repro.workflow.dag import FileSpec, Task, Workflow

        def tiny(i):
            wf = Workflow(f"tiny{i}")
            wf.add_file(FileSpec("a", 10.0))
            wf.add_file(FileSpec("b", 10.0))
            wf.add_task(Task("t", 5.0, inputs=("a",), outputs=("b",)))
            wf.validate()
            return wf

        engine = SimulationEngine()
        pool = ProcessorPool(1)
        env = ExecutionEnvironment(n_processors=1, record_trace=False)
        executors = [
            WorkflowExecutor(
                tiny(i), env, engine=engine, processors=pool,
                start_time=float(i),
            )
            for i in range(3)
        ]
        for ex in executors:
            ex.start()
        assert len(pool._release_subscribers) == 3
        engine.run()
        assert all(ex.finished for ex in executors)
        assert pool._release_subscribers == []

    def test_curve_tracking_can_be_disabled(self):
        pool = ProcessorPool(2, track_curve=False)
        pool.acquire(0.0)
        pool.release(5.0)
        assert pool.busy_curve is None
        with pytest.raises(RuntimeError):
            pool.busy_processor_seconds(0.0, 5.0)
