"""Differential suites for the single-run/capacity SoA core paths.

PR 9 proved the turbo loop's SoA transcription; these suites do the
same for the two loops that joined the core afterwards — the contended
per-lane FIFO link replay and the finite-``storage_capacity_bytes``
loop — plus the columnar event-log mode that makes ``record_trace=True``
runs core-eligible.  Every property pins ``REPRO_SIM_JIT`` (on = SoA
core, interpreted when numba is absent, compiled in the numba CI leg;
off = legacy loops) and requires *dataclass equality* of the full
:class:`SimulationResult` against the event engine: float-exact
scalars, task/transfer records, StepCurve breakpoints, and verbatim
deadlock/abort diagnostics.

``REPRO_SIM_CORE=off`` is the escape hatch that pins the legacy loops
while the backend stays active — the record-assembly parity tests use
it to run core and oracle side by side in one process.
"""

import contextlib
import os
import warnings

import pytest
from hypothesis import given, settings, strategies as st

from repro.sim import kernel_core, simulate
from repro.sim.executor import ExecutionEnvironment
from repro.sim.failures import FailureModel, WorkflowAbortedError
from repro.sim.kernel import KernelConfig, run_monte_carlo, summary_batch

from tests.strategies import workflows

pytestmark = pytest.mark.property


@pytest.fixture(autouse=True)
def _fresh_backend(monkeypatch):
    """Isolate backend/core resolution from the ambient environment."""
    monkeypatch.delenv(kernel_core.JIT_ENV, raising=False)
    monkeypatch.delenv(kernel_core.CORE_ENV, raising=False)
    kernel_core._invalidate_backend()
    yield
    kernel_core._invalidate_backend()


@contextlib.contextmanager
def _jit_pinned(mode):
    prev = os.environ.get(kernel_core.JIT_ENV)
    os.environ[kernel_core.JIT_ENV] = mode
    kernel_core._invalidate_backend()
    try:
        with warnings.catch_warnings():
            # "on" without numba warns once that the SoA core runs
            # interpreted — expected in the no-numba CI leg.
            warnings.simplefilter("ignore", RuntimeWarning)
            yield
    finally:
        if prev is None:
            os.environ.pop(kernel_core.JIT_ENV, None)
        else:
            os.environ[kernel_core.JIT_ENV] = prev
        kernel_core._invalidate_backend()


@contextlib.contextmanager
def _core_pinned(mode):
    prev = os.environ.get(kernel_core.CORE_ENV)
    os.environ[kernel_core.CORE_ENV] = mode
    try:
        yield
    finally:
        if prev is None:
            os.environ.pop(kernel_core.CORE_ENV, None)
        else:
            os.environ[kernel_core.CORE_ENV] = prev


# ------------------------------------------------------------------ #
# REPRO_SIM_CORE resolution and gating
# ------------------------------------------------------------------ #
def test_resolve_core_defaults_and_env(monkeypatch):
    assert kernel_core.resolve_core() == "auto"
    assert kernel_core.resolve_core("off") == "off"
    monkeypatch.setenv(kernel_core.CORE_ENV, "ON")
    assert kernel_core.resolve_core() == "on"
    monkeypatch.setenv(kernel_core.CORE_ENV, "")
    assert kernel_core.resolve_core() == "auto"


def test_resolve_core_rejects_unknown(monkeypatch):
    monkeypatch.setenv(kernel_core.CORE_ENV, "legacy")
    with pytest.raises(ValueError, match="unknown core mode"):
        kernel_core.resolve_core()
    with pytest.raises(ValueError, match="unknown core mode"):
        kernel_core.resolve_core("fast")


def test_core_enabled_follows_backend_and_escape_hatch(monkeypatch):
    # Follows the backend: enabled exactly when jit_enabled() is.
    with _jit_pinned("on"):
        assert kernel_core.jit_enabled() is True
        assert kernel_core.core_enabled() is True
        # The escape hatch disables core routing without touching the
        # backend (turbo dispatch keys off jit_enabled alone).
        with _core_pinned("off"):
            assert kernel_core.jit_enabled() is True
            assert kernel_core.core_enabled() is False
    with _jit_pinned("off"):
        assert kernel_core.core_enabled() is False
        with _core_pinned("on"):
            # "on" cannot conjure a backend the JIT mode disabled.
            assert kernel_core.core_enabled() is False


def test_backend_carries_all_three_loops():
    backend = kernel_core.jit_backend()
    for key in ("turbo", "single", "capacity"):
        assert callable(backend[key])
    if not backend["compiled"]:
        assert backend["single"] is kernel_core._single_fifo_soa
        assert backend["capacity"] is kernel_core._capacity_fifo_soa


def _count_core_calls(monkeypatch):
    """Instrument the wrappers so tests can assert routing happened."""
    calls = {"single": 0, "capacity": 0}
    real_single = kernel_core.single_soa
    real_capacity = kernel_core.capacity_soa

    def single(*args, **kwargs):
        calls["single"] += 1
        return real_single(*args, **kwargs)

    def capacity(*args, **kwargs):
        calls["capacity"] += 1
        return real_capacity(*args, **kwargs)

    monkeypatch.setattr(kernel_core, "single_soa", single)
    monkeypatch.setattr(kernel_core, "capacity_soa", capacity)
    return calls


def test_traced_and_capacity_runs_route_through_core(monkeypatch):
    """record_trace=True and finite-capacity runs are core-eligible."""
    from repro.montage.generator import montage_workflow

    wf = montage_workflow(0.5)
    calls = _count_core_calls(monkeypatch)
    with _jit_pinned("on"):
        simulate(wf, 4, record_trace=True, kernel="fast")
        simulate(wf, 4, link_contention=True, kernel="fast")
        simulate(wf, 4, storage_capacity_bytes=1e12, kernel="fast")
    assert calls == {"single": 2, "capacity": 1}
    # The escape hatch pins the legacy loops again.
    with _jit_pinned("on"), _core_pinned("off"):
        simulate(wf, 4, record_trace=True, kernel="fast")
        simulate(wf, 4, storage_capacity_bytes=1e12, kernel="fast")
    assert calls == {"single": 2, "capacity": 1}


# ------------------------------------------------------------------ #
# contended-link replay through the core vs the event engine
# ------------------------------------------------------------------ #
@pytest.mark.parametrize("jit", ["on", "off"])
@settings(max_examples=40, deadline=None)
@given(
    wf=workflows(),
    p=st.integers(1, 6),
    mode=st.sampled_from(("regular", "cleanup")),
    sep=st.booleans(),
    trace=st.booleans(),
)
def test_contended_core_identical_to_event_engine(
    jit, wf, p, mode, sep, trace
):
    kwargs = dict(
        n_processors=p,
        data_mode=mode,
        link_contention=True,
        separate_links=sep,
        record_trace=trace,
    )
    a = simulate(wf, kernel="event", **kwargs)
    with _jit_pinned(jit):
        b = simulate(wf, kernel="fast", **kwargs)
    assert a == b


# ------------------------------------------------------------------ #
# finite-capacity replay through the core vs the event engine
# ------------------------------------------------------------------ #
def _run_or_deadlock(wf, kernel, **kwargs):
    try:
        return simulate(wf, kernel=kernel, **kwargs), None
    except RuntimeError as err:
        return None, str(err)


@pytest.mark.parametrize("jit", ["on", "off"])
@settings(max_examples=40, deadline=None)
@given(
    wf=workflows(),
    p=st.integers(1, 6),
    mode=st.sampled_from(("regular", "cleanup")),
    frac=st.sampled_from([0.1, 0.3, 0.6, 2.0]),
    cont=st.booleans(),
    trace=st.booleans(),
)
def test_capacity_core_identical_to_event_engine(
    jit, wf, p, mode, frac, cont, trace
):
    total = sum(f.size_bytes for f in wf.files.values())
    kwargs = dict(
        n_processors=p,
        data_mode=mode,
        storage_capacity_bytes=max(total * frac, 1.0),
        link_contention=cont,
        record_trace=trace,
    )
    a, a_err = _run_or_deadlock(wf, "event", **kwargs)
    with _jit_pinned(jit):
        b, b_err = _run_or_deadlock(wf, "fast", **kwargs)
    # Deadlocks must agree byte-for-byte, capacity hint included.
    assert a_err == b_err
    assert a == b


# ------------------------------------------------------------------ #
# columnar record assembly vs the legacy loops (escape hatch oracle)
# ------------------------------------------------------------------ #
@settings(max_examples=40, deadline=None)
@given(
    wf=workflows(),
    p=st.integers(1, 6),
    mode=st.sampled_from(("regular", "cleanup")),
    cont=st.booleans(),
    frac=st.sampled_from([None, 0.4, 2.0]),
    boot=st.sampled_from([0.0, 10.0]),
)
def test_columnar_records_match_legacy_loops(wf, p, mode, cont, frac, boot):
    """Records/curves built from the event log byte-match the legacy

    loops' — same configuration, same process, core on vs pinned off.
    """
    total = sum(f.size_bytes for f in wf.files.values())
    kwargs = dict(
        n_processors=p,
        data_mode=mode,
        link_contention=cont,
        storage_capacity_bytes=(
            None if frac is None else max(total * frac, 1.0)
        ),
        compute_ready_seconds=boot,
        record_trace=True,
    )
    with _jit_pinned("on"):
        core, core_err = _run_or_deadlock(wf, "fast", **kwargs)
        with _core_pinned("off"):
            legacy, legacy_err = _run_or_deadlock(wf, "fast", **kwargs)
    assert core_err == legacy_err
    assert core == legacy


# ------------------------------------------------------------------ #
# Monte Carlo verdict cells through the core (contention + capacity)
# ------------------------------------------------------------------ #
@pytest.mark.parametrize("jit", ["on", "off"])
@settings(max_examples=15, deadline=None)
@given(
    wf=workflows(max_tasks=10),
    probs=st.lists(
        st.floats(0.0, 0.4, allow_nan=False), min_size=1, max_size=2
    ),
    n_seeds=st.integers(1, 3),
    cont=st.booleans(),
    frac=st.sampled_from([None, 0.8]),
)
def test_monte_carlo_core_cells_identical(jit, wf, probs, n_seeds, cont, frac):
    total = sum(f.size_bytes for f in wf.files.values())
    env = ExecutionEnvironment(
        n_processors=2,
        link_contention=cont,
        storage_capacity_bytes=(
            None if frac is None else max(total * frac, 1.0)
        ),
        record_trace=False,
    )
    cfg = KernelConfig(environment=env)
    with _jit_pinned(jit):
        try:
            cells = run_monte_carlo(
                wf, cfg, probs, range(n_seeds), max_retries=1
            )
        except RuntimeError:
            # Capacity deadlock: must deadlock identically on the
            # legacy path too, then there is nothing else to compare.
            with _core_pinned("off"):
                with pytest.raises(RuntimeError):
                    run_monte_carlo(
                        wf, cfg, probs, range(n_seeds), max_retries=1
                    )
            return
    for cell in cells:
        failures = (
            FailureModel(cell.probability, seed=cell.seed, max_retries=1)
            if cell.probability > 0.0
            else None
        )
        try:
            ref = simulate(
                wf,
                2,
                link_contention=cont,
                storage_capacity_bytes=env.storage_capacity_bytes,
                record_trace=False,
                failures=failures,
                kernel="event",
            )
        except WorkflowAbortedError as err:
            assert cell.aborted
            assert cell.abort_message == str(err)
        else:
            assert not cell.aborted
            assert cell.result == ref


@settings(max_examples=15, deadline=None)
@given(
    wf=workflows(max_tasks=10),
    probs=st.lists(
        st.floats(0.0, 0.4, allow_nan=False), min_size=1, max_size=2
    ),
    n_seeds=st.integers(1, 3),
    cont=st.booleans(),
    frac=st.sampled_from([None, 0.8]),
)
def test_monte_carlo_columnar_rows_invariant_to_core(
    wf, probs, n_seeds, cont, frac
):
    """Columnar SUMMARY_DTYPE rows are invariant to the core routing."""
    total = sum(f.size_bytes for f in wf.files.values())
    env = ExecutionEnvironment(
        n_processors=2,
        link_contention=cont,
        storage_capacity_bytes=(
            None if frac is None else max(total * frac, 1.0)
        ),
        record_trace=False,
    )
    cfg = KernelConfig(environment=env)
    n_cells = len(probs) * n_seeds

    def rows():
        out = summary_batch(n_cells)
        try:
            run_monte_carlo(
                wf, cfg, probs, range(n_seeds), max_retries=1, out=out
            )
        except RuntimeError as err:
            return str(err)
        return out.tobytes()

    with _jit_pinned("on"):
        core = rows()
        with _core_pinned("off"):
            legacy = rows()
    assert core == legacy


def test_capacity_deadlock_message_verbatim_through_core():
    """A deadlocked core run carries the engine's exact diagnostic."""
    from repro.montage.generator import montage_workflow

    wf = montage_workflow(0.3)
    kwargs = dict(n_processors=2, storage_capacity_bytes=1.0)
    engine, engine_err = _run_or_deadlock(wf, "event", **kwargs)
    with _jit_pinned("on"):
        core, core_err = _run_or_deadlock(wf, "fast", **kwargs)
    assert engine is None and core is None
    assert engine_err is not None
    assert core_err == engine_err
