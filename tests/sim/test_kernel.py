"""Fast-kernel unit tests: dispatch policy, eligibility, exact equality.

The statistical heavy lifting (kernel ≡ engine on arbitrary DAGs) lives
in ``test_kernel_differential.py``; this file pins the dispatch rules of
``simulate(..., kernel=...)``, the eligibility boundary, the lowering
cache's mutation safety, and exact equality — records and curves
included — on the golden Montage workflow.
"""

import pytest

from repro.montage.generator import montage_workflow
from repro.sim import (
    FIFO_ORDER,
    LEVEL_ORDER,
    LONGEST_FIRST,
    SHORTEST_FIRST,
    ExecutionEnvironment,
    FailureModel,
    KernelIneligibleError,
    kernel_eligible,
    resolve_kernel,
    run_fast_kernel,
    simulate,
)
from repro.sim.kernel import KERNEL_ENV
from repro.workflow.dag import FileSpec, Task, Workflow


def small_workflow() -> Workflow:
    wf = Workflow("diamond")
    wf.add_file(FileSpec("raw", 4e6))
    wf.add_file(FileSpec("a", 2e6))
    wf.add_file(FileSpec("b", 1e6))
    wf.add_file(FileSpec("out", 3e6))
    wf.add_task(Task("t0", 10.0, inputs=("raw",), outputs=("a", "b")))
    wf.add_task(Task("t1", 5.0, inputs=("a",), outputs=()))
    wf.add_task(Task("t2", 7.0, inputs=("a", "b"), outputs=("out",)))
    return wf


class TestResolveKernel:
    def test_default_is_auto(self, monkeypatch):
        monkeypatch.delenv(KERNEL_ENV, raising=False)
        assert resolve_kernel() == "auto"
        assert resolve_kernel(None) == "auto"

    def test_explicit_argument_wins_over_env(self, monkeypatch):
        monkeypatch.setenv(KERNEL_ENV, "event")
        assert resolve_kernel("fast") == "fast"

    def test_env_variable(self, monkeypatch):
        monkeypatch.setenv(KERNEL_ENV, "event")
        assert resolve_kernel() == "event"
        monkeypatch.setenv(KERNEL_ENV, " FAST ")
        assert resolve_kernel() == "fast"

    def test_unknown_name_rejected(self, monkeypatch):
        with pytest.raises(ValueError, match="unknown simulation kernel"):
            resolve_kernel("turbo")
        monkeypatch.setenv(KERNEL_ENV, "warp")
        with pytest.raises(ValueError, match="unknown simulation kernel"):
            resolve_kernel()


class TestEligibility:
    def test_simple_model_is_eligible(self):
        env = ExecutionEnvironment(n_processors=4)
        assert kernel_eligible(env)

    def test_contention_ineligible(self):
        env = ExecutionEnvironment(n_processors=4, link_contention=True)
        assert not kernel_eligible(env)

    def test_finite_storage_ineligible(self):
        env = ExecutionEnvironment(
            n_processors=4, storage_capacity_bytes=1e9
        )
        assert not kernel_eligible(env)

    def test_failures_ineligible(self):
        env = ExecutionEnvironment(n_processors=4)
        assert not kernel_eligible(env, FailureModel(0.1, seed=1))

    def test_fast_raises_on_ineligible_config(self):
        with pytest.raises(KernelIneligibleError):
            simulate(small_workflow(), 2, kernel="fast",
                     link_contention=True)
        with pytest.raises(KernelIneligibleError):
            simulate(small_workflow(), 2, kernel="fast",
                     storage_capacity_bytes=1e9)
        with pytest.raises(KernelIneligibleError):
            simulate(small_workflow(), 2, kernel="fast",
                     failures=FailureModel(0.5, seed=3))

    def test_run_fast_kernel_rejects_directly(self):
        env = ExecutionEnvironment(n_processors=2, link_contention=True)
        with pytest.raises(KernelIneligibleError):
            run_fast_kernel(small_workflow(), env)

    def test_kernel_validates_processor_count(self):
        env = ExecutionEnvironment(n_processors=0)
        with pytest.raises(ValueError, match="at least one processor"):
            run_fast_kernel(small_workflow(), env)


class TestAutoFallback:
    """kernel='auto' must silently take the event engine when needed."""

    def test_auto_matches_event_on_ineligible_configs(self):
        wf = small_workflow()
        for kwargs in (
            {"link_contention": True},
            {"storage_capacity_bytes": 1e9},
            {"failures": FailureModel(0.3, seed=7)},
        ):
            if "failures" in kwargs:
                # fresh model per run: the RNG stream is consumed
                a = simulate(wf, 2, kernel="auto",
                             failures=FailureModel(0.3, seed=7))
                b = simulate(wf, 2, kernel="event",
                             failures=FailureModel(0.3, seed=7))
            else:
                a = simulate(wf, 2, kernel="auto", **kwargs)
                b = simulate(wf, 2, kernel="event", **kwargs)
            assert a == b

    def test_audited_auto_run_uses_event_engine(self):
        # audit=True forces the event path under "auto" (the oracle's
        # job is to check the engine); the result must not change.
        wf = small_workflow()
        audited = simulate(wf, 2, kernel="auto", audit=True)
        plain = simulate(wf, 2, kernel="event")
        assert audited == plain

    def test_env_kernel_steers_simulate(self, monkeypatch):
        wf = small_workflow()
        monkeypatch.setenv(KERNEL_ENV, "fast")
        with pytest.raises(KernelIneligibleError):
            simulate(wf, 2, link_contention=True)
        monkeypatch.setenv(KERNEL_ENV, "event")
        assert simulate(wf, 2) == simulate(wf, 2, kernel="fast")


class TestExactEquality:
    @pytest.mark.parametrize("mode", ["regular", "cleanup", "remote-io"])
    @pytest.mark.parametrize("overhead,boot", [(0.0, 0.0), (2.5, 45.0)])
    def test_montage_identical_with_traces(self, mode, overhead, boot):
        wf = montage_workflow(1.0)
        kwargs = dict(
            data_mode=mode,
            task_overhead_seconds=overhead,
            compute_ready_seconds=boot,
            record_trace=True,
        )
        a = simulate(wf, 8, kernel="event", **kwargs)
        b = simulate(wf, 8, kernel="fast", **kwargs)
        # dataclass equality covers every scalar, all task/transfer
        # records, and exact StepCurve breakpoints/values
        assert a == b
        assert a.storage_curve == b.storage_curve
        assert a.busy_curve == b.busy_curve
        assert a.task_records == b.task_records
        assert a.transfer_records == b.transfer_records

    @pytest.mark.parametrize(
        "ordering", [FIFO_ORDER, LONGEST_FIRST, SHORTEST_FIRST, LEVEL_ORDER]
    )
    def test_montage_identical_under_orderings(self, ordering):
        wf = montage_workflow(1.0)
        for mode in ("regular", "cleanup"):
            a = simulate(wf, 4, data_mode=mode, ordering=ordering,
                         kernel="event")
            b = simulate(wf, 4, data_mode=mode, ordering=ordering,
                         kernel="fast")
            assert a == b

    def test_empty_workflow(self):
        wf = Workflow("empty")
        a = simulate(wf, 2, kernel="event")
        b = simulate(wf, 2, kernel="fast")
        assert a == b
        assert b.makespan == 0.0

    def test_traceless_results_match(self):
        wf = montage_workflow(1.0)
        a = simulate(wf, 16, data_mode="cleanup", record_trace=False,
                     kernel="event")
        b = simulate(wf, 16, data_mode="cleanup", record_trace=False,
                     kernel="fast")
        assert a == b
        assert b.storage_curve is None and b.busy_curve is None


@pytest.mark.audit
class TestKernelUnderAudit:
    def test_oracle_passes_on_kernel_records(self):
        # kernel="fast" + audit=True reconciles the kernel's own emitted
        # records against the oracle — the second, independent proof of
        # equivalence (the first is the differential suite).
        wf = montage_workflow(1.0)
        for mode in ("regular", "cleanup", "remote-io"):
            result = simulate(wf, 8, data_mode=mode, kernel="fast",
                              audit=True)
            assert result.n_task_executions == len(wf.tasks)

    def test_oracle_passes_with_overhead_and_boot(self):
        result = simulate(
            small_workflow(), 2, data_mode="cleanup",
            task_overhead_seconds=1.5, compute_ready_seconds=30.0,
            kernel="fast", audit=True,
        )
        assert result.makespan > 30.0


class TestLoweringCache:
    def test_mutation_invalidates_cached_lowering(self):
        wf = small_workflow()
        before = simulate(wf, 2, kernel="fast")
        # Structural mutation after a kernel run: the cached lowering
        # must be rebuilt, not reused.
        wf.add_file(FileSpec("extra", 5e6))
        wf.add_task(Task("t3", 11.0, inputs=("out", "extra"), outputs=()))
        after_fast = simulate(wf, 2, kernel="fast")
        after_event = simulate(wf, 2, kernel="event")
        assert after_fast == after_event
        assert after_fast.makespan > before.makespan

    def test_version_counter_bumps_on_mutation(self):
        wf = Workflow("v")
        v0 = wf.version
        wf.add_file(FileSpec("x", 1.0))
        assert wf.version > v0
        v1 = wf.version
        wf.add_task(Task("t", 1.0, inputs=("x",), outputs=()))
        assert wf.version > v1
        v2 = wf.version
        wf.mark_output("x")
        assert wf.version > v2
