"""Fast-kernel unit tests: dispatch policy, eligibility, exact equality.

The statistical heavy lifting (kernel ≡ engine on arbitrary DAGs) lives
in ``test_kernel_differential.py``; this file pins the dispatch rules of
``simulate(..., kernel=...)``, the eligibility boundary, the lowering
cache's mutation safety, and exact equality — records and curves
included — on the golden Montage workflow.
"""

import pytest

from repro.montage.generator import montage_workflow
from repro.sim import (
    FIFO_ORDER,
    LEVEL_ORDER,
    LONGEST_FIRST,
    SHORTEST_FIRST,
    ExecutionEnvironment,
    FailureModel,
    KernelConfig,
    kernel_eligible,
    resolve_kernel,
    run_fast_kernel,
    run_fast_kernel_batch,
    run_monte_carlo,
    simulate,
)
from repro.sim.failures import WorkflowAbortedError
from repro.sim.kernel import KERNEL_ENV
from repro.workflow.dag import FileSpec, Task, Workflow


def small_workflow() -> Workflow:
    wf = Workflow("diamond")
    wf.add_file(FileSpec("raw", 4e6))
    wf.add_file(FileSpec("a", 2e6))
    wf.add_file(FileSpec("b", 1e6))
    wf.add_file(FileSpec("out", 3e6))
    wf.add_task(Task("t0", 10.0, inputs=("raw",), outputs=("a", "b")))
    wf.add_task(Task("t1", 5.0, inputs=("a",), outputs=()))
    wf.add_task(Task("t2", 7.0, inputs=("a", "b"), outputs=("out",)))
    return wf


class TestResolveKernel:
    def test_default_is_auto(self, monkeypatch):
        monkeypatch.delenv(KERNEL_ENV, raising=False)
        assert resolve_kernel() == "auto"
        assert resolve_kernel(None) == "auto"

    def test_explicit_argument_wins_over_env(self, monkeypatch):
        monkeypatch.setenv(KERNEL_ENV, "event")
        assert resolve_kernel("fast") == "fast"

    def test_env_variable(self, monkeypatch):
        monkeypatch.setenv(KERNEL_ENV, "event")
        assert resolve_kernel() == "event"
        monkeypatch.setenv(KERNEL_ENV, " FAST ")
        assert resolve_kernel() == "fast"

    def test_unknown_name_rejected(self, monkeypatch):
        with pytest.raises(ValueError, match="unknown simulation kernel"):
            resolve_kernel("turbo")
        monkeypatch.setenv(KERNEL_ENV, "warp")
        with pytest.raises(ValueError, match="unknown simulation kernel"):
            resolve_kernel()


class TestEligibility:
    def test_simple_model_is_eligible(self):
        env = ExecutionEnvironment(n_processors=4)
        assert kernel_eligible(env)

    def test_contention_eligible(self):
        # Contended FIFO links are modelled natively since the batched
        # kernel PR.
        env = ExecutionEnvironment(n_processors=4, link_contention=True)
        assert kernel_eligible(env)
        env = ExecutionEnvironment(
            n_processors=4, link_contention=True, separate_links=True
        )
        assert kernel_eligible(env)

    def test_finite_storage_eligible(self):
        env = ExecutionEnvironment(
            n_processors=4, storage_capacity_bytes=1e9
        )
        assert kernel_eligible(env)

    def test_failures_eligible(self):
        # The kernel replays FailureModel draws bit-identically since
        # the Monte Carlo PR: nothing is ineligible any more.
        env = ExecutionEnvironment(n_processors=4)
        assert kernel_eligible(env, FailureModel(0.1, seed=1))

    def test_fast_never_raises(self):
        # Failures, contention and finite capacity all run on the fast
        # kernel; KernelIneligibleError survives only as a deprecated
        # API name (see test_ineligible_alias_deprecated).
        r = simulate(small_workflow(), 2, kernel="fast",
                     failures=FailureModel(0.5, seed=3))
        assert r.makespan > 0
        r = simulate(small_workflow(), 2, kernel="fast",
                     link_contention=True)
        assert r.makespan > 0
        r = simulate(small_workflow(), 2, kernel="fast",
                     storage_capacity_bytes=1e9)
        assert r.makespan > 0

    def test_ineligible_alias_deprecated(self):
        # The raise paths are gone; accessing the name (from the kernel
        # module or the sim package) warns but keeps old except clauses
        # importable, and the alias is still a ValueError subclass.
        import repro.sim as sim_pkg
        import repro.sim.kernel as kernel_mod

        with pytest.warns(DeprecationWarning, match="KernelIneligibleError"):
            exc = kernel_mod.KernelIneligibleError
        assert issubclass(exc, ValueError)
        with pytest.warns(DeprecationWarning, match="KernelIneligibleError"):
            assert sim_pkg.KernelIneligibleError is exc

    def test_run_fast_kernel_handles_contention_and_capacity(self):
        for env in (
            ExecutionEnvironment(n_processors=2, link_contention=True),
            ExecutionEnvironment(n_processors=2, storage_capacity_bytes=1e9),
        ):
            assert run_fast_kernel(small_workflow(), env).makespan > 0

    def test_kernel_validates_processor_count(self):
        env = ExecutionEnvironment(n_processors=0)
        with pytest.raises(ValueError, match="at least one processor"):
            run_fast_kernel(small_workflow(), env)


class TestAutoFallback:
    """kernel='auto' must match the event engine on every configuration."""

    def test_auto_matches_event_on_failure_configs(self):
        # fresh model per run: the RNG stream is consumed.  Under "auto"
        # this now rides the fast kernel's failure replay.
        wf = small_workflow()
        a = simulate(wf, 2, kernel="auto",
                     failures=FailureModel(0.3, seed=7))
        b = simulate(wf, 2, kernel="event",
                     failures=FailureModel(0.3, seed=7))
        assert a == b

    def test_auto_matches_event_on_newly_eligible_configs(self):
        # Contention and capacity take the fast path under "auto" now —
        # and the results must still equal the event engine's exactly.
        wf = small_workflow()
        for kwargs in (
            {"link_contention": True},
            {"link_contention": True, "separate_links": True},
            {"storage_capacity_bytes": 1e9},
            {"storage_capacity_bytes": 1.2e7, "link_contention": True},
        ):
            a = simulate(wf, 2, kernel="auto", **kwargs)
            b = simulate(wf, 2, kernel="event", **kwargs)
            assert a == b

    def test_auto_matches_event_deadlock_on_tight_capacity(self):
        # A capacity below the workflow's footprint deadlocks — on both
        # backends, with the same message.
        wf = small_workflow()
        errs = []
        for kernel in ("auto", "event"):
            with pytest.raises(RuntimeError, match="capacity") as err:
                simulate(wf, 2, kernel=kernel, storage_capacity_bytes=7e6)
            errs.append(str(err.value))
        assert errs[0] == errs[1]

    def test_audited_auto_run_uses_event_engine(self):
        # audit=True forces the event path under "auto" (the oracle's
        # job is to check the engine); the result must not change.
        wf = small_workflow()
        audited = simulate(wf, 2, kernel="auto", audit=True)
        plain = simulate(wf, 2, kernel="event")
        assert audited == plain

    def test_env_kernel_steers_simulate(self, monkeypatch):
        wf = small_workflow()
        monkeypatch.setenv(KERNEL_ENV, "fast")
        a = simulate(wf, 2, failures=FailureModel(0.2, seed=11))
        monkeypatch.setenv(KERNEL_ENV, "event")
        b = simulate(wf, 2, failures=FailureModel(0.2, seed=11))
        assert a == b
        assert simulate(wf, 2) == simulate(wf, 2, kernel="fast")


class TestExactEquality:
    @pytest.mark.parametrize("mode", ["regular", "cleanup", "remote-io"])
    @pytest.mark.parametrize("overhead,boot", [(0.0, 0.0), (2.5, 45.0)])
    def test_montage_identical_with_traces(self, mode, overhead, boot):
        wf = montage_workflow(1.0)
        kwargs = dict(
            data_mode=mode,
            task_overhead_seconds=overhead,
            compute_ready_seconds=boot,
            record_trace=True,
        )
        a = simulate(wf, 8, kernel="event", **kwargs)
        b = simulate(wf, 8, kernel="fast", **kwargs)
        # dataclass equality covers every scalar, all task/transfer
        # records, and exact StepCurve breakpoints/values
        assert a == b
        assert a.storage_curve == b.storage_curve
        assert a.busy_curve == b.busy_curve
        assert a.task_records == b.task_records
        assert a.transfer_records == b.transfer_records

    @pytest.mark.parametrize(
        "ordering", [FIFO_ORDER, LONGEST_FIRST, SHORTEST_FIRST, LEVEL_ORDER]
    )
    def test_montage_identical_under_orderings(self, ordering):
        wf = montage_workflow(1.0)
        for mode in ("regular", "cleanup"):
            a = simulate(wf, 4, data_mode=mode, ordering=ordering,
                         kernel="event")
            b = simulate(wf, 4, data_mode=mode, ordering=ordering,
                         kernel="fast")
            assert a == b

    def test_empty_workflow(self):
        wf = Workflow("empty")
        a = simulate(wf, 2, kernel="event")
        b = simulate(wf, 2, kernel="fast")
        assert a == b
        assert b.makespan == 0.0

    def test_traceless_results_match(self):
        wf = montage_workflow(1.0)
        a = simulate(wf, 16, data_mode="cleanup", record_trace=False,
                     kernel="event")
        b = simulate(wf, 16, data_mode="cleanup", record_trace=False,
                     kernel="fast")
        assert a == b
        assert b.storage_curve is None and b.busy_curve is None


@pytest.mark.audit
class TestKernelUnderAudit:
    def test_oracle_passes_on_kernel_records(self):
        # kernel="fast" + audit=True reconciles the kernel's own emitted
        # records against the oracle — the second, independent proof of
        # equivalence (the first is the differential suite).
        wf = montage_workflow(1.0)
        for mode in ("regular", "cleanup", "remote-io"):
            result = simulate(wf, 8, data_mode=mode, kernel="fast",
                              audit=True)
            assert result.n_task_executions == len(wf.tasks)

    def test_oracle_passes_with_overhead_and_boot(self):
        result = simulate(
            small_workflow(), 2, data_mode="cleanup",
            task_overhead_seconds=1.5, compute_ready_seconds=30.0,
            kernel="fast", audit=True,
        )
        assert result.makespan > 30.0


class TestBatchKernel:
    """run_fast_kernel_batch ≡ per-run run_fast_kernel ≡ event engine."""

    def test_processor_ladder_identical(self):
        wf = montage_workflow(1.0)
        envs = [
            ExecutionEnvironment(n_processors=p, record_trace=False)
            for p in (1, 2, 4, 8, 16, 32)
        ]
        configs = [
            KernelConfig(environment=e, data_mode="cleanup") for e in envs
        ]
        batch = run_fast_kernel_batch(wf, configs)
        for env, got in zip(envs, batch):
            assert got == run_fast_kernel(wf, env, data_mode="cleanup")
            assert got == simulate(
                wf, env.n_processors, data_mode="cleanup",
                record_trace=False, kernel="event",
            )

    def test_heterogeneous_configs_identical(self):
        # One batch mixing modes, orderings, traces, contention and
        # capacity — every config must match its own per-run result.
        wf = small_workflow()
        specs = [
            dict(data_mode="regular"),
            dict(data_mode="cleanup", ordering=LONGEST_FIRST),
            dict(data_mode="remote-io"),
            dict(data_mode="regular", record_trace=True),
            dict(data_mode="cleanup", link_contention=True),
            dict(data_mode="cleanup", storage_capacity_bytes=8e6),
            dict(data_mode="regular", storage_capacity_bytes=1.2e7),
            dict(data_mode="cleanup", task_overhead_seconds=1.5,
                 compute_ready_seconds=20.0),
        ]
        configs = []
        for s in specs:
            s = dict(s)
            mode = s.pop("data_mode")
            order = s.pop("ordering", FIFO_ORDER)
            env = ExecutionEnvironment(
                n_processors=2, record_trace=s.pop("record_trace", False),
                **s,
            )
            configs.append(
                KernelConfig(environment=env, data_mode=mode, ordering=order)
            )
        batch = run_fast_kernel_batch(wf, configs)
        for cfg, got in zip(configs, batch):
            assert got == run_fast_kernel(
                wf, cfg.environment, cfg.data_mode, ordering=cfg.ordering
            )

    def test_batch_deadlock_matches_per_run_error(self):
        wf = small_workflow()
        env = ExecutionEnvironment(
            n_processors=2, storage_capacity_bytes=1e3
        )
        with pytest.raises(RuntimeError, match="capacity") as batch_err:
            run_fast_kernel_batch(wf, [KernelConfig(environment=env)])
        with pytest.raises(RuntimeError, match="capacity") as single_err:
            simulate(wf, 2, storage_capacity_bytes=1e3, kernel="event")
        assert str(batch_err.value) == str(single_err.value)

    def test_empty_batch(self):
        assert run_fast_kernel_batch(small_workflow(), []) == []

    def test_batch_validates_processor_count(self):
        env = ExecutionEnvironment(n_processors=0)
        with pytest.raises(ValueError, match="at least one processor"):
            run_fast_kernel_batch(
                small_workflow(), [KernelConfig(environment=env)]
            )


class TestLoweringCache:
    def test_mutation_invalidates_cached_lowering(self):
        wf = small_workflow()
        before = simulate(wf, 2, kernel="fast")
        # Structural mutation after a kernel run: the cached lowering
        # must be rebuilt, not reused.
        wf.add_file(FileSpec("extra", 5e6))
        wf.add_task(Task("t3", 11.0, inputs=("out", "extra"), outputs=()))
        after_fast = simulate(wf, 2, kernel="fast")
        after_event = simulate(wf, 2, kernel="event")
        assert after_fast == after_event
        assert after_fast.makespan > before.makespan

    def test_version_counter_bumps_on_mutation(self):
        wf = Workflow("v")
        v0 = wf.version
        wf.add_file(FileSpec("x", 1.0))
        assert wf.version > v0
        v1 = wf.version
        wf.add_task(Task("t", 1.0, inputs=("x",), outputs=()))
        assert wf.version > v1
        v2 = wf.version
        wf.mark_output("x")
        assert wf.version > v2


class TestMonteCarlo:
    """run_monte_carlo: the seed-batched (probability, seed) grid."""

    def _config(self, n=4, **env_kwargs):
        return KernelConfig(
            environment=ExecutionEnvironment(n_processors=n, **env_kwargs)
        )

    def test_cells_match_event_engine(self):
        wf = montage_workflow(0.2)
        probs = (0.0, 0.05, 0.15)
        seeds = (0, 1, 2, 3)
        cells = run_monte_carlo(wf, self._config(), probs, seeds,
                                max_retries=50)
        assert len(cells) == len(probs) * len(seeds)
        i = 0
        for prob in probs:
            for seed in seeds:
                cell = cells[i]
                i += 1
                assert (cell.probability, cell.seed) == (prob, seed)
                assert not cell.aborted
                ref = simulate(
                    wf, 4, record_trace=False,
                    failures=FailureModel(prob, seed=seed, max_retries=50),
                    kernel="event",
                )
                assert cell.result == ref

    def test_zero_probability_matches_no_failures_exactly(self):
        # Satellite: p=0 and failures=None must be byte-identical —
        # the model consumes no draws, so there is nothing to replay.
        wf = small_workflow()
        cells = run_monte_carlo(wf, self._config(2), [0.0], [7, 8])
        baseline = simulate(wf, 2, record_trace=False, kernel="fast")
        for cell in cells:
            assert cell.result == baseline

    def test_failure_free_cells_dedup_exact(self):
        # A low-probability grid mixes seeds that draw a failure with
        # seeds that provably cannot; the latter must reuse the
        # no-failure baseline (identity) and every cell must still be
        # bit-identical to a stand-alone event-engine run (exactness).
        wf = montage_workflow(0.2)
        seeds = tuple(range(12))
        cells = run_monte_carlo(wf, self._config(), [0.0, 0.05], seeds,
                                max_retries=50)
        baseline = cells[0].result
        shared = sum(1 for c in cells if c.result is baseline)
        ran = sum(1 for c in cells if c.result is not baseline)
        assert shared > len(seeds), "p=0 cells plus some p=0.005 cells"
        assert ran > 0, "some seed must actually draw a failure"
        for cell in cells:
            ref = simulate(
                wf, 4, record_trace=False,
                failures=FailureModel(cell.probability, seed=cell.seed,
                                      max_retries=50),
                kernel="event",
            )
            assert cell.result == ref

    def test_summary_only_skips_traces(self):
        wf = small_workflow()
        config = KernelConfig(
            environment=ExecutionEnvironment(n_processors=2,
                                             record_trace=True)
        )
        summary = run_monte_carlo(wf, config, [0.1], [0])
        assert summary[0].result.task_records == []
        traced = run_monte_carlo(wf, config, [0.1], [0],
                                 summary_only=False)
        assert len(traced[0].result.task_records) >= len(wf.tasks)
        ref = simulate(wf, 2, record_trace=True,
                       failures=FailureModel(0.1, seed=0), kernel="event")
        assert traced[0].result == ref

    def test_abort_cells_flagged_with_engine_message(self):
        wf = small_workflow()
        probs = (0.9,)
        seeds = range(6)
        cells = run_monte_carlo(wf, self._config(2), probs, seeds,
                                max_retries=0)
        aborted = [c for c in cells if c.aborted]
        assert aborted, "p=0.9 with no retries must abort some seed"
        for cell in cells:
            try:
                ref = simulate(
                    wf, 2, record_trace=False,
                    failures=FailureModel(0.9, seed=cell.seed,
                                          max_retries=0),
                    kernel="event",
                )
            except WorkflowAbortedError as err:
                assert cell.aborted
                assert cell.result is None
                assert cell.abort_message == str(err)
            else:
                assert not cell.aborted
                assert cell.result == ref

    def test_validates_inputs(self):
        wf = small_workflow()
        with pytest.raises(ValueError, match="probability"):
            run_monte_carlo(wf, self._config(), [1.0], [0])
        with pytest.raises(ValueError, match="max_retries"):
            run_monte_carlo(wf, self._config(), [0.1], [0], max_retries=-1)

    def test_empty_grid(self):
        wf = small_workflow()
        assert run_monte_carlo(wf, self._config(), [], [0]) == []
        assert run_monte_carlo(wf, self._config(), [0.1], []) == []
