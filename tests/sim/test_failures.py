"""Failure-injection tests."""

import pytest

from repro.sim.executor import simulate
from repro.sim.failures import FailureModel, WorkflowAbortedError
from repro.workflow.generators import chain_workflow, fork_join_workflow


class TestFailureModel:
    def test_zero_probability_never_fails(self):
        fm = FailureModel(0.0)
        assert not any(fm.attempt_fails("t", 1) for _ in range(100))

    def test_deterministic_given_seed(self):
        a = [FailureModel(0.5, seed=7).attempt_fails("t", 1) for _ in range(1)]
        b = [FailureModel(0.5, seed=7).attempt_fails("t", 1) for _ in range(1)]
        assert a == b

    def test_invalid_probability(self):
        with pytest.raises(ValueError):
            FailureModel(1.0)
        with pytest.raises(ValueError):
            FailureModel(-0.1)

    def test_retry_budget_exhaustion_aborts(self):
        fm = FailureModel(0.999999999, seed=1, max_retries=2)
        assert fm.attempt_fails("t", 1)  # within budget
        with pytest.raises(WorkflowAbortedError):
            fm.attempt_fails("t", 3)  # attempt > max_retries and fails


class TestSimulationWithFailures:
    def test_reexecutions_counted_and_billed(self):
        wf = fork_join_workflow(20, runtime=10.0)
        fm = FailureModel(0.3, seed=42, max_retries=50)
        r = simulate(wf, 4, failures=fm)
        assert r.n_task_failures > 0
        assert r.n_task_executions == len(wf.tasks) + r.n_task_failures
        # Failed attempts burn (and bill) compute time.
        assert r.compute_seconds == pytest.approx(
            wf.total_runtime() + 10.0 * r.n_task_failures
        )

    def test_failures_slow_the_run(self):
        wf = chain_workflow(20, runtime=10.0)
        clean = simulate(wf, 1)
        faulty = simulate(
            wf, 1, failures=FailureModel(0.4, seed=3, max_retries=50)
        )
        assert faulty.makespan > clean.makespan

    def test_results_deterministic(self):
        wf = fork_join_workflow(10, runtime=5.0)
        r1 = simulate(wf, 2, failures=FailureModel(0.2, seed=9))
        r2 = simulate(wf, 2, failures=FailureModel(0.2, seed=9))
        assert r1.makespan == r2.makespan
        assert r1.n_task_failures == r2.n_task_failures

    def test_attempt_numbers_recorded(self):
        wf = chain_workflow(5, runtime=10.0)
        r = simulate(wf, 1, failures=FailureModel(0.5, seed=11, max_retries=50))
        attempts = [rec.attempt for rec in r.task_records]
        assert max(attempts) >= 2  # at least one retry happened at p=0.5
        # Attempts per task are consecutive starting at 1.
        by_task = {}
        for rec in r.task_records:
            by_task.setdefault(rec.task_id, []).append(rec.attempt)
        for task_attempts in by_task.values():
            assert sorted(task_attempts) == list(
                range(1, len(task_attempts) + 1)
            )

    def test_workflow_abort_propagates(self):
        wf = chain_workflow(50, runtime=1.0)
        with pytest.raises(WorkflowAbortedError):
            simulate(wf, 1, failures=FailureModel(0.9, seed=1, max_retries=0))


class TestRetryRebilling:
    """Same-processor retries re-bill the wasted attempt time in full.

    Each attempt — failed or not — occupies the processor for
    ``overhead + runtime`` and bills ``runtime`` of compute, so a task
    with k failures costs (k+1) x runtime of on-demand CPU and stretches
    the processor hold by (k+1) x (overhead + runtime).
    """

    def test_rebilling_math_pinned_per_attempt(self):
        wf = chain_workflow(8, runtime=10.0)
        overhead = 3.0
        r = simulate(
            wf, 1,
            task_overhead_seconds=overhead,
            failures=FailureModel(0.4, seed=21, max_retries=50),
        )
        n_attempts = len(wf.tasks) + r.n_task_failures
        assert r.n_task_failures > 0
        assert r.n_task_executions == n_attempts
        # Compute billing: one full runtime per attempt, no discounts.
        assert r.compute_seconds == pytest.approx(10.0 * n_attempts)
        # Processor occupancy: overhead is also re-paid on every retry.
        assert r.cpu_busy_seconds == pytest.approx(
            (10.0 + overhead) * n_attempts
        )
        # Every attempt occupies the processor for overhead + runtime.
        for rec in r.task_records:
            assert rec.end - rec.start == pytest.approx(10.0 + overhead)
        # Retries are contiguous on the held processor: each task's
        # attempt k+1 starts exactly where attempt k ended.
        by_task = {}
        for rec in r.task_records:
            by_task.setdefault(rec.task_id, []).append(rec)
        for records in by_task.values():
            records.sort(key=lambda rec: rec.attempt)
            for prev, nxt in zip(records, records[1:]):
                assert nxt.start == pytest.approx(prev.end)

    def test_failed_attempts_raise_on_demand_cpu_cost(self):
        from repro.core.costs import compute_cost
        from repro.core.plans import ExecutionPlan
        from repro.core.pricing import AWS_2008

        wf = chain_workflow(8, runtime=10.0)
        plan = ExecutionPlan.on_demand(1)
        clean = compute_cost(simulate(wf, 1), AWS_2008, plan)
        faulty_result = simulate(
            wf, 1, failures=FailureModel(0.4, seed=21, max_retries=50)
        )
        faulty = compute_cost(faulty_result, AWS_2008, plan)
        expected_extra = (
            10.0 * faulty_result.n_task_failures * AWS_2008.cpu_per_second
        )
        assert faulty.cpu_cost == pytest.approx(
            clean.cpu_cost + expected_extra
        )
