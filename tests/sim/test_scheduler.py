"""Ready-task ordering policy tests."""

import pytest

from repro.sim.executor import simulate
from repro.sim.scheduler import (
    ALL_ORDERINGS,
    FIFO_ORDER,
    LEVEL_ORDER,
    LONGEST_FIRST,
    SHORTEST_FIRST,
)
from repro.workflow.dag import FileSpec, Task, Workflow

BW = 1.25e6


def _two_lane_workflow():
    """Four independent tasks with distinct runtimes, tiny files."""
    wf = Workflow("lanes")
    runtimes = {"a": 40.0, "b": 10.0, "c": 30.0, "d": 20.0}
    for name, rt in runtimes.items():
        wf.add_file(FileSpec(f"in_{name}", 0.0))
        wf.add_file(FileSpec(f"out_{name}", 0.0))
        wf.add_task(
            Task(name, rt, inputs=(f"in_{name}",), outputs=(f"out_{name}",))
        )
    wf.validate()
    return wf


def _start_order(result):
    recs = sorted(result.task_records, key=lambda r: (r.start, r.task_id))
    return [r.task_id for r in recs]


class TestOrderings:
    def test_fifo_runs_in_arrival_order(self):
        r = simulate(_two_lane_workflow(), 1, bandwidth_bytes_per_sec=BW,
                     ordering=FIFO_ORDER)
        assert _start_order(r) == ["a", "b", "c", "d"]

    def test_longest_first(self):
        r = simulate(_two_lane_workflow(), 1, bandwidth_bytes_per_sec=BW,
                     ordering=LONGEST_FIRST)
        assert _start_order(r) == ["a", "c", "d", "b"]  # 'a' greedy-first

    def test_shortest_first(self):
        # Dispatch is greedy/work-conserving: 'a' becomes ready first and
        # grabs the idle processor immediately; the policy then orders the
        # queued remainder.
        r = simulate(_two_lane_workflow(), 1, bandwidth_bytes_per_sec=BW,
                     ordering=SHORTEST_FIRST)
        assert _start_order(r) == ["a", "b", "d", "c"]

    def test_all_orderings_same_bytes_and_compute(self):
        wf = _two_lane_workflow()
        base = simulate(wf, 2, bandwidth_bytes_per_sec=BW)
        for ordering in ALL_ORDERINGS:
            r = simulate(wf, 2, bandwidth_bytes_per_sec=BW, ordering=ordering)
            assert r.bytes_in == pytest.approx(base.bytes_in)
            assert r.bytes_out == pytest.approx(base.bytes_out)
            assert r.compute_seconds == pytest.approx(base.compute_seconds)

    def test_level_order_on_montage(self, montage1):
        """Level ordering must start all mProjects before any mDiffFit."""
        r = simulate(montage1, 8, ordering=LEVEL_ORDER)
        first_diff_start = min(
            rec.start for rec in r.task_records
            if rec.transformation == "mDiffFit"
        )
        last_project_start = max(
            rec.start for rec in r.task_records
            if rec.transformation == "mProject"
        )
        assert last_project_start <= first_diff_start + 1e-9

    def test_repr(self):
        assert "fifo" in repr(FIFO_ORDER)
