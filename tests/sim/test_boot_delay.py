"""VM boot-delay (compute_ready_seconds) tests."""

import pytest

from repro.core.costs import compute_cost
from repro.core.plans import ExecutionPlan, VMOverhead
from repro.core.pricing import AWS_2008
from repro.sim.executor import ExecutionEnvironment, simulate
from repro.workflow.generators import chain_workflow, fork_join_workflow

BW = 1.25e6
F = 1.25e6


class TestBootDelay:
    def test_exact_timing(self):
        wf = chain_workflow(2, runtime=100.0, file_size=F)
        r = simulate(
            wf, 1, bandwidth_bytes_per_sec=BW, compute_ready_seconds=120.0
        )
        # Stage-in [0,1] overlaps the boot; t0 [120,220]; t1 [220,320];
        # stage-out [320,321].
        assert r.makespan == pytest.approx(321.0)

    def test_transfers_not_delayed(self):
        wf = chain_workflow(1, runtime=10.0, file_size=F)
        r = simulate(
            wf, 1, bandwidth_bytes_per_sec=BW, compute_ready_seconds=50.0
        )
        stage_in = [t for t in r.transfer_records if t.direction == "in"][0]
        assert stage_in.start == 0.0  # S3 is up while the VMs boot
        assert stage_in.end == pytest.approx(1.0)
        assert r.makespan == pytest.approx(50.0 + 10.0 + 1.0)

    def test_zero_delay_is_default(self):
        wf = fork_join_workflow(3, runtime=10.0, file_size=F)
        a = simulate(wf, 3, bandwidth_bytes_per_sec=BW)
        b = simulate(
            wf, 3, bandwidth_bytes_per_sec=BW, compute_ready_seconds=0.0
        )
        assert a.makespan == pytest.approx(b.makespan)

    def test_compute_unaffected_after_boot(self):
        wf = fork_join_workflow(4, runtime=50.0, file_size=F)
        base = simulate(wf, 4, bandwidth_bytes_per_sec=BW)
        delayed = simulate(
            wf, 4, bandwidth_bytes_per_sec=BW, compute_ready_seconds=30.0
        )
        # Transfers (1 s each) finish during the boot; afterwards the
        # schedule replays exactly, shifted to the boot completion.
        assert delayed.makespan == pytest.approx(30.0 + 50.0 + 50.0 + 1.0)
        assert delayed.compute_seconds == pytest.approx(base.compute_seconds)
        assert delayed.bytes_in == pytest.approx(base.bytes_in)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            ExecutionEnvironment(n_processors=1, compute_ready_seconds=-1.0)

    def test_paired_with_vm_overhead_billing(self, montage1):
        """Timing (simulator) and billing (plan) sides agree on boot."""
        boot = 120.0
        r = simulate(
            montage1, 8, compute_ready_seconds=boot, record_trace=False
        )
        plan = ExecutionPlan.provisioned(
            8, vm_overhead=VMOverhead(startup_seconds=0.0)
        )
        cost = compute_cost(r, AWS_2008, plan)
        # The boot already lengthened the billed makespan; no teardown.
        baseline = simulate(montage1, 8, record_trace=False)
        assert r.makespan == pytest.approx(baseline.makespan + boot, rel=0.01)
        assert cost.cpu_cost > 0
