"""Metamorphic properties of the simulator/pricing stack.

Instead of golden numbers, these assert *relations between runs* that
must hold on any workflow the DAG strategy can produce:

* scaling every price by ``k`` scales every cost component by ``k``;
* dynamic cleanup never occupies more peak storage than Regular mode;
* scaling file sizes (the paper's CCR knob) moves transfer cost
  proportionally and leaves on-demand CPU cost untouched;
* failure injection with ``p = 0`` is byte-identical to no injection;
* and any randomly drawn simulation point reconciles under the full
  trace audit.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.audit import audit_simulation
from repro.core.costs import compute_cost
from repro.core.plans import ExecutionPlan
from repro.core.pricing import AWS_2008
from repro.sim.executor import simulate
from repro.sweep.job import FailureSpec, SimJob

from tests.strategies import DATA_MODES, ccr_scaled_pairs, sim_jobs, workflows

pytestmark = pytest.mark.property

BW = 1.25e6  # 10 Mbps in bytes/s, the paper's link


@settings(max_examples=25, deadline=None)
@given(
    wf=workflows(max_tasks=8),
    mode=st.sampled_from(DATA_MODES),
    k=st.sampled_from([0.1, 0.5, 3.0, 42.0]),
)
def test_price_vector_linearity(wf, mode, k):
    """cost(k * prices) == k * cost(prices), componentwise, both plans."""
    result = simulate(wf, 4, mode, bandwidth_bytes_per_sec=BW,
                      record_trace=False)
    scaled = AWS_2008.scaled(storage=k, transfer=k, cpu=k)
    for plan in (
        ExecutionPlan.provisioned(4, mode),
        ExecutionPlan.on_demand(4, mode),
    ):
        base = compute_cost(result, AWS_2008, plan)
        big = compute_cost(result, scaled, plan)
        assert big.cpu_cost == pytest.approx(k * base.cpu_cost)
        assert big.storage_cost == pytest.approx(k * base.storage_cost)
        assert big.transfer_in_cost == pytest.approx(
            k * base.transfer_in_cost
        )
        assert big.transfer_out_cost == pytest.approx(
            k * base.transfer_out_cost
        )
        assert big.total == pytest.approx(k * base.total)


@settings(max_examples=25, deadline=None)
@given(wf=workflows(max_tasks=10), p=st.integers(1, 6))
def test_cleanup_peak_never_exceeds_regular(wf, p):
    """Deleting dead files can only lower the storage high-water mark."""
    regular = simulate(wf, p, "regular", bandwidth_bytes_per_sec=BW,
                       record_trace=False)
    cleanup = simulate(wf, p, "cleanup", bandwidth_bytes_per_sec=BW,
                       record_trace=False)
    assert cleanup.peak_storage_bytes <= regular.peak_storage_bytes + 1e-6
    assert (
        cleanup.storage_byte_seconds
        <= regular.storage_byte_seconds + 1e-6
    )


@settings(max_examples=25, deadline=None)
@given(
    pair=ccr_scaled_pairs(max_tasks=8),
    mode=st.sampled_from(DATA_MODES),
)
def test_ccr_scaling_moves_transfer_cost_not_cpu(pair, mode):
    """File-size scaling (the paper's CCRd/CCRr knob): transfer fees
    scale with the factor, on-demand CPU fees do not move at all."""
    wf, scaled_wf, k = pair
    plan = ExecutionPlan.on_demand(4, mode)
    base = compute_cost(
        simulate(wf, 4, mode, bandwidth_bytes_per_sec=BW,
                 record_trace=False),
        AWS_2008, plan,
    )
    moved = compute_cost(
        simulate(scaled_wf, 4, mode, bandwidth_bytes_per_sec=BW,
                 record_trace=False),
        AWS_2008, plan,
    )
    assert moved.cpu_cost == pytest.approx(base.cpu_cost)
    assert moved.transfer_in_cost == pytest.approx(
        k * base.transfer_in_cost
    )
    assert moved.transfer_out_cost == pytest.approx(
        k * base.transfer_out_cost
    )


@settings(max_examples=25, deadline=None)
@given(
    wf=workflows(max_tasks=8),
    mode=st.sampled_from(DATA_MODES),
    p=st.integers(1, 4),
    seed=st.integers(0, 2**16),
)
def test_zero_probability_failures_are_inert(wf, mode, p, seed):
    """p=0 injection must leave the entire result object identical —
    records, curves and aggregates — to a run with no failure model."""
    plain = SimJob(wf, p, mode, bandwidth_bytes_per_sec=BW,
                   record_trace=True).run()
    inert = SimJob(
        wf, p, mode, bandwidth_bytes_per_sec=BW, record_trace=True,
        failures=FailureSpec(0.0, seed=seed),
    ).run()
    assert plain == inert


@pytest.mark.audit
@settings(max_examples=25, deadline=None)
@given(job=sim_jobs(max_tasks=8))
def test_arbitrary_jobs_reconcile_under_audit(job):
    """Every point the sweep layer can express must audit clean."""
    from dataclasses import replace

    traced = replace(job, bandwidth_bytes_per_sec=BW, record_trace=True)
    result = traced.run()
    report = audit_simulation(result, job.workflow, traced.environment())
    assert report.ok, report.summary() + "\n" + "\n".join(
        str(v) for v in report.violations[:5]
    )
