"""Negative audits: deliberately corrupted runs must be caught.

Each test injects one specific lie — a dropped record, a shifted task, a
doctored aggregate — and asserts the oracle pins it with a violation of
the right category.  This is the evidence that the clean audits in
``test_oracle.py`` actually constrain the engine.
"""

from dataclasses import replace

import pytest

from repro.audit import AuditError, audit_simulation
from repro.sim.executor import (
    ExecutionEnvironment,
    WorkflowExecutor,
    simulate,
)
from repro.workflow.generators import diamond_workflow, fork_join_workflow

pytestmark = pytest.mark.audit


@pytest.fixture()
def wf():
    return fork_join_workflow(10, runtime=30.0)


def _fresh(wf, n=4, mode="regular", **kwargs):
    result = simulate(wf, n, mode, **kwargs)
    env = ExecutionEnvironment(n_processors=n, **kwargs)
    return result, env


def _violations(result, wf, env, category=None):
    report = audit_simulation(result, wf, env)
    assert not report.ok, "corruption went undetected"
    if category is not None:
        assert any(v.category == category for v in report.violations), (
            f"expected a {category!r} violation, got: "
            + "; ".join(str(v) for v in report.violations[:5])
        )
    return report


class TestTamperedRecords:
    def test_dropped_transfer_record(self, wf):
        result, env = _fresh(wf)
        result.transfer_records.pop(0)
        _violations(result, wf, env, "metric")

    def test_dropped_task_record(self, wf):
        result, env = _fresh(wf)
        result.task_records.pop(3)
        _violations(result, wf, env, "trace")

    def test_duplicated_transfer_record(self, wf):
        result, env = _fresh(wf)
        result.transfer_records.append(result.transfer_records[0])
        _violations(result, wf, env, "trace")

    def test_shifted_task_record_breaks_precedence(self, wf):
        # The sink consumes every fan-out output; starting it earlier
        # than its last input's producer finishes is illegal.
        result, env = _fresh(wf, n=2)
        idx, sink = max(
            enumerate(result.task_records), key=lambda kv: kv[1].start
        )
        result.task_records[idx] = replace(
            sink, start=sink.start - 25.0, end=sink.end - 25.0
        )
        _violations(result, wf, env, "precedence")

    def test_overlapping_tasks_exceed_capacity(self, wf):
        # On one processor every pair of tasks is serialized; pulling one
        # start backwards makes two holds overlap.
        result, env = _fresh(wf, n=1)
        recs = sorted(result.task_records, key=lambda r: r.start)
        second = recs[1]
        idx = result.task_records.index(second)
        result.task_records[idx] = replace(
            second, start=second.start - 10.0
        )
        report = audit_simulation(result, wf, env)
        assert not report.ok
        assert any(
            v.category in ("capacity", "precedence", "metric")
            for v in report.violations
        )

    def test_stretched_transfer_breaks_link_law(self, wf):
        result, env = _fresh(wf)
        t = result.transfer_records[0]
        result.transfer_records[0] = replace(t, end=t.end + 100.0)
        _violations(result, wf, env, "link")


class TestDoctoredAggregates:
    @pytest.mark.parametrize(
        "field, delta",
        [
            ("makespan", 1.0),
            ("bytes_in", 1e6),
            ("bytes_out", -1e5),
            ("compute_seconds", 5.0),
            ("cpu_busy_seconds", 60.0),
            ("storage_byte_seconds", 1e9),
            ("peak_storage_bytes", -1e6),
            ("n_task_executions", 1),
            ("n_transfers_in", 2),
        ],
    )
    def test_doctored_scalar_is_caught(self, wf, field, delta):
        result, env = _fresh(wf)
        setattr(result, field, getattr(result, field) + delta)
        _violations(result, wf, env)

    def test_doctored_storage_integral_also_breaks_cost(self, wf):
        result, env = _fresh(wf)
        result.storage_byte_seconds *= 2.0
        report = _violations(result, wf, env, "metric")
        assert any(v.category == "cost" for v in report.violations)

    def test_doctored_storage_curve_is_caught(self, wf):
        result, env = _fresh(wf)
        result.storage_curve.add(10.0, 12345.0)
        _violations(result, wf, env, "metric")


class TestInjectedEngineBug:
    """The ISSUE's acceptance scenario: an engine that loses a transfer
    record (while still accounting its bytes) must fail a live
    ``simulate(..., audit=True)`` run."""

    def test_engine_dropping_a_transfer_record_is_caught(self, monkeypatch):
        wf = fork_join_workflow(10, runtime=30.0)
        original = WorkflowExecutor.record_transfer
        state = {"calls": 0}

        def buggy(self, file_name, size_bytes, direction, start, end, task_id):
            state["calls"] += 1
            if state["calls"] == 3:
                # The injected bug: bytes are billed, the record is lost.
                self._bytes[direction] += size_bytes
                self._n_transfers[direction] += 1
                return
            original(
                self, file_name, size_bytes, direction, start, end, task_id
            )

        monkeypatch.setattr(WorkflowExecutor, "record_transfer", buggy)
        with pytest.raises(AuditError) as excinfo:
            simulate(wf, 2, "regular", audit=True)
        assert not excinfo.value.report.ok
        assert state["calls"] > 3  # the run went past the dropped record

    def test_engine_misbilling_compute_is_caught(self, monkeypatch):
        wf = diamond_workflow()

        def forgetful(self, task_id):
            # Engine bug: attempts run but compute time is never billed.
            pass

        original_execute = WorkflowExecutor._execute

        def patched(self, task_id):
            original_execute(self, task_id)
            self._compute_seconds -= self.workflow.task(task_id).runtime / 2

        monkeypatch.setattr(WorkflowExecutor, "_execute", patched)
        with pytest.raises(AuditError):
            simulate(wf, 2, "regular", audit=True)


class TestFailureLegality:
    """Fast-kernel failure traces: re-billing, budget and abort checks.

    The satellite scenario: a kernel that forgets to re-bill a failed
    attempt (wasted compute not added to ``compute_seconds``) must be
    caught, as must a trace whose attempt counts exceed the declared
    retry budget.
    """

    def _failing_run(self, kernel="fast"):
        from repro.sim.failures import FailureModel

        wf = fork_join_workflow(10, runtime=30.0)
        for seed in range(20):
            model = FailureModel(0.3, seed=seed, max_retries=50)
            result = simulate(wf, 4, "regular", failures=model,
                              kernel=kernel)
            if result.n_task_failures:
                return wf, result, seed
        raise AssertionError("no seed under 20 produced a retry")

    def _spec(self, seed, max_retries=50, probability=0.3):
        from repro.sim.failures import FailureModel

        # A fresh model doubles as the declarative spec: the auditor
        # only reads task_failure_probability and max_retries.
        return FailureModel(probability, seed=seed, max_retries=max_retries)

    def test_clean_failure_trace_passes(self):
        wf, result, seed = self._failing_run()
        env = ExecutionEnvironment(n_processors=4)
        report = audit_simulation(result, wf, env,
                                  failures=self._spec(seed))
        assert report.ok, "; ".join(str(v) for v in report.violations[:5])

    def test_forgotten_rebill_is_caught(self):
        # Kernel-bug simulation: a retried task's wasted attempt is not
        # billed.  The oracle re-derives compute-seconds from the
        # per-attempt records and pins the shortfall.
        wf, result, seed = self._failing_run()
        retried = next(r for r in result.task_records if r.attempt > 1)
        result.compute_seconds -= wf.task(retried.task_id).runtime
        env = ExecutionEnvironment(n_processors=4)
        report = audit_simulation(result, wf, env,
                                  failures=self._spec(seed))
        assert not report.ok
        assert any(v.category == "metric" for v in report.violations)

    def test_dropped_retry_record_is_caught(self):
        # Losing the failed attempt's record entirely (while keeping the
        # aggregate counters) breaks attempt contiguity / the counters.
        wf, result, seed = self._failing_run()
        idx = next(i for i, r in enumerate(result.task_records)
                   if r.attempt > 1)
        result.task_records.pop(idx)
        env = ExecutionEnvironment(n_processors=4)
        report = audit_simulation(result, wf, env,
                                  failures=self._spec(seed))
        assert not report.ok

    def test_retry_budget_violation_is_caught(self):
        # The trace shows a second attempt, but the declared budget
        # (max_retries=0) aborts the run before any retry: "failure".
        wf, result, seed = self._failing_run()
        env = ExecutionEnvironment(n_processors=4)
        report = audit_simulation(
            result, wf, env, failures=self._spec(seed, max_retries=0)
        )
        assert not report.ok
        assert any(v.category == "failure" for v in report.violations)

    def test_zero_probability_with_failures_is_caught(self):
        # A zero-probability model can never produce a failed attempt.
        wf, result, seed = self._failing_run()
        env = ExecutionEnvironment(n_processors=4)
        report = audit_simulation(
            result, wf, env,
            failures=self._spec(seed, probability=0.0),
        )
        assert not report.ok
        assert any(v.category == "failure" for v in report.violations)


class TestAuditErrorBehaviour:
    def test_error_is_picklable(self, wf):
        import pickle

        result, env = _fresh(wf)
        result.makespan += 10.0
        report = audit_simulation(result, wf, env)
        err = AuditError(report)
        clone = pickle.loads(pickle.dumps(err))
        assert isinstance(clone, AuditError)
        assert clone.report.violations == report.violations

    def test_error_message_lists_violations(self, wf):
        result, env = _fresh(wf)
        result.makespan += 10.0
        with pytest.raises(AuditError, match="makespan"):
            audit_simulation(result, wf, env).raise_if_failed()
