"""Negative audits: deliberately corrupted runs must be caught.

Each test injects one specific lie — a dropped record, a shifted task, a
doctored aggregate — and asserts the oracle pins it with a violation of
the right category.  This is the evidence that the clean audits in
``test_oracle.py`` actually constrain the engine.
"""

from dataclasses import replace

import pytest

from repro.audit import AuditError, audit_simulation
from repro.sim.executor import (
    ExecutionEnvironment,
    WorkflowExecutor,
    simulate,
)
from repro.workflow.generators import diamond_workflow, fork_join_workflow

pytestmark = pytest.mark.audit


@pytest.fixture()
def wf():
    return fork_join_workflow(10, runtime=30.0)


def _fresh(wf, n=4, mode="regular", **kwargs):
    result = simulate(wf, n, mode, **kwargs)
    env = ExecutionEnvironment(n_processors=n, **kwargs)
    return result, env


def _violations(result, wf, env, category=None):
    report = audit_simulation(result, wf, env)
    assert not report.ok, "corruption went undetected"
    if category is not None:
        assert any(v.category == category for v in report.violations), (
            f"expected a {category!r} violation, got: "
            + "; ".join(str(v) for v in report.violations[:5])
        )
    return report


class TestTamperedRecords:
    def test_dropped_transfer_record(self, wf):
        result, env = _fresh(wf)
        result.transfer_records.pop(0)
        _violations(result, wf, env, "metric")

    def test_dropped_task_record(self, wf):
        result, env = _fresh(wf)
        result.task_records.pop(3)
        _violations(result, wf, env, "trace")

    def test_duplicated_transfer_record(self, wf):
        result, env = _fresh(wf)
        result.transfer_records.append(result.transfer_records[0])
        _violations(result, wf, env, "trace")

    def test_shifted_task_record_breaks_precedence(self, wf):
        # The sink consumes every fan-out output; starting it earlier
        # than its last input's producer finishes is illegal.
        result, env = _fresh(wf, n=2)
        idx, sink = max(
            enumerate(result.task_records), key=lambda kv: kv[1].start
        )
        result.task_records[idx] = replace(
            sink, start=sink.start - 25.0, end=sink.end - 25.0
        )
        _violations(result, wf, env, "precedence")

    def test_overlapping_tasks_exceed_capacity(self, wf):
        # On one processor every pair of tasks is serialized; pulling one
        # start backwards makes two holds overlap.
        result, env = _fresh(wf, n=1)
        recs = sorted(result.task_records, key=lambda r: r.start)
        second = recs[1]
        idx = result.task_records.index(second)
        result.task_records[idx] = replace(
            second, start=second.start - 10.0
        )
        report = audit_simulation(result, wf, env)
        assert not report.ok
        assert any(
            v.category in ("capacity", "precedence", "metric")
            for v in report.violations
        )

    def test_stretched_transfer_breaks_link_law(self, wf):
        result, env = _fresh(wf)
        t = result.transfer_records[0]
        result.transfer_records[0] = replace(t, end=t.end + 100.0)
        _violations(result, wf, env, "link")


class TestDoctoredAggregates:
    @pytest.mark.parametrize(
        "field, delta",
        [
            ("makespan", 1.0),
            ("bytes_in", 1e6),
            ("bytes_out", -1e5),
            ("compute_seconds", 5.0),
            ("cpu_busy_seconds", 60.0),
            ("storage_byte_seconds", 1e9),
            ("peak_storage_bytes", -1e6),
            ("n_task_executions", 1),
            ("n_transfers_in", 2),
        ],
    )
    def test_doctored_scalar_is_caught(self, wf, field, delta):
        result, env = _fresh(wf)
        setattr(result, field, getattr(result, field) + delta)
        _violations(result, wf, env)

    def test_doctored_storage_integral_also_breaks_cost(self, wf):
        result, env = _fresh(wf)
        result.storage_byte_seconds *= 2.0
        report = _violations(result, wf, env, "metric")
        assert any(v.category == "cost" for v in report.violations)

    def test_doctored_storage_curve_is_caught(self, wf):
        result, env = _fresh(wf)
        result.storage_curve.add(10.0, 12345.0)
        _violations(result, wf, env, "metric")


class TestInjectedEngineBug:
    """The ISSUE's acceptance scenario: an engine that loses a transfer
    record (while still accounting its bytes) must fail a live
    ``simulate(..., audit=True)`` run."""

    def test_engine_dropping_a_transfer_record_is_caught(self, monkeypatch):
        wf = fork_join_workflow(10, runtime=30.0)
        original = WorkflowExecutor.record_transfer
        state = {"calls": 0}

        def buggy(self, file_name, size_bytes, direction, start, end, task_id):
            state["calls"] += 1
            if state["calls"] == 3:
                # The injected bug: bytes are billed, the record is lost.
                self._bytes[direction] += size_bytes
                self._n_transfers[direction] += 1
                return
            original(
                self, file_name, size_bytes, direction, start, end, task_id
            )

        monkeypatch.setattr(WorkflowExecutor, "record_transfer", buggy)
        with pytest.raises(AuditError) as excinfo:
            simulate(wf, 2, "regular", audit=True)
        assert not excinfo.value.report.ok
        assert state["calls"] > 3  # the run went past the dropped record

    def test_engine_misbilling_compute_is_caught(self, monkeypatch):
        wf = diamond_workflow()

        def forgetful(self, task_id):
            # Engine bug: attempts run but compute time is never billed.
            pass

        original_execute = WorkflowExecutor._execute

        def patched(self, task_id):
            original_execute(self, task_id)
            self._compute_seconds -= self.workflow.task(task_id).runtime / 2

        monkeypatch.setattr(WorkflowExecutor, "_execute", patched)
        with pytest.raises(AuditError):
            simulate(wf, 2, "regular", audit=True)


class TestAuditErrorBehaviour:
    def test_error_is_picklable(self, wf):
        import pickle

        result, env = _fresh(wf)
        result.makespan += 10.0
        report = audit_simulation(result, wf, env)
        err = AuditError(report)
        clone = pickle.loads(pickle.dumps(err))
        assert isinstance(clone, AuditError)
        assert clone.report.violations == report.violations

    def test_error_message_lists_violations(self, wf):
        result, env = _fresh(wf)
        result.makespan += 10.0
        with pytest.raises(AuditError, match="makespan"):
            audit_simulation(result, wf, env).raise_if_failed()
