"""Positive audits: the engine must reconcile cleanly against itself.

Every configuration the experiments use — all three data-management
modes, both link models, task overhead, VM boot delay, storage gating and
failure injection — must produce a trace from which the oracle re-derives
exactly the figures the engine reported.
"""

import pytest

from repro.audit import AuditError, audit_simulation
from repro.sim.executor import ExecutionEnvironment, simulate
from repro.sim.failures import FailureModel
from repro.util.units import GB
from repro.workflow.generators import (
    chain_workflow,
    diamond_workflow,
    fork_join_workflow,
)

pytestmark = pytest.mark.audit

MODES = ("regular", "cleanup", "remote-io")


def _audit(wf, n, mode, **kwargs):
    failures = kwargs.pop("failures", None)
    result = simulate(wf, n, mode, failures=failures, **kwargs)
    env = ExecutionEnvironment(n_processors=n, **kwargs)
    return audit_simulation(result, wf, env)


class TestCleanAudits:
    @pytest.mark.parametrize("mode", MODES)
    def test_montage_all_modes(self, montage1, mode):
        report = _audit(montage1, 8, mode)
        assert report.ok, report.summary()
        assert report.n_checks > 1000

    @pytest.mark.parametrize("mode", MODES)
    def test_task_overhead(self, mode):
        wf = fork_join_workflow(12, runtime=20.0)
        assert _audit(wf, 4, mode, task_overhead_seconds=7.5).ok

    @pytest.mark.parametrize("mode", MODES)
    def test_boot_delay(self, mode):
        wf = diamond_workflow()
        assert _audit(wf, 2, mode, compute_ready_seconds=120.0).ok

    @pytest.mark.parametrize("mode", MODES)
    @pytest.mark.parametrize("separate", [False, True])
    def test_contended_link(self, mode, separate):
        wf = fork_join_workflow(8, runtime=5.0)
        assert _audit(
            wf, 4, mode, link_contention=True, separate_links=separate
        ).ok

    @pytest.mark.parametrize("mode", MODES)
    def test_storage_gated(self, montage1, mode):
        assert _audit(
            montage1, 8, mode, storage_capacity_bytes=6.0 * GB
        ).ok

    @pytest.mark.parametrize("mode", MODES)
    def test_with_failures(self, mode):
        wf = chain_workflow(15, runtime=8.0)
        report = _audit(
            wf, 2, mode,
            failures=FailureModel(0.3, seed=17, max_retries=50),
        )
        assert report.ok, report.summary()

    def test_single_processor_montage(self, montage1):
        assert _audit(montage1, 1, "regular").ok

    def test_audit_report_summary_format(self, montage1):
        report = _audit(montage1, 4, "cleanup")
        assert "OK" in report.summary()
        assert report.raise_if_failed() is report


class TestEntryPoints:
    def test_simulate_audit_flag(self, montage1):
        result = simulate(montage1, 8, "regular", audit=True)
        assert result.makespan > 0

    def test_audit_forces_trace(self, montage1):
        result = simulate(
            montage1, 8, "regular", record_trace=False, audit=True
        )
        assert result.task_records  # tracing was forced on

    def test_traceless_result_rejected(self, montage1):
        result = simulate(montage1, 8, "regular", record_trace=False)
        env = ExecutionEnvironment(n_processors=8)
        with pytest.raises(ValueError, match="record_trace"):
            audit_simulation(result, montage1, env)

    def test_empty_workflow_audits_clean(self):
        from repro.workflow.dag import Workflow

        wf = Workflow("empty")
        result = simulate(wf, 1, "regular")
        assert audit_simulation(
            result, wf, ExecutionEnvironment(n_processors=1)
        ).ok


class TestRebilledRetries:
    """Satellite: wasted (failed) attempt time must appear in CPU cost.

    The auditor's compute_seconds reconciliation re-derives the billed
    compute from *every* task record, including failed attempts, so a
    FailureModel that stopped re-billing retries would flip the check.
    """

    def test_auditor_counts_failed_attempt_time(self):
        wf = chain_workflow(10, runtime=10.0)
        fm = FailureModel(0.4, seed=5, max_retries=50)
        result = simulate(wf, 1, "regular", failures=fm)
        assert result.n_task_failures > 0
        report = audit_simulation(
            result, wf, ExecutionEnvironment(n_processors=1)
        )
        assert report.ok, report.summary()
        # The trace-derived figure includes a full runtime per retry.
        assert result.compute_seconds == pytest.approx(
            wf.total_runtime() + 10.0 * result.n_task_failures
        )

    def test_auditor_rejects_unbilled_retries(self):
        """If the engine 'forgot' to bill wasted attempts, the audit fails."""
        wf = chain_workflow(10, runtime=10.0)
        fm = FailureModel(0.4, seed=5, max_retries=50)
        result = simulate(wf, 1, "regular", failures=fm)
        assert result.n_task_failures > 0
        result.compute_seconds -= 10.0 * result.n_task_failures
        report = audit_simulation(
            result, wf, ExecutionEnvironment(n_processors=1)
        )
        assert not report.ok
        assert any("compute_seconds" in v.message for v in report.violations)
        with pytest.raises(AuditError):
            report.raise_if_failed()
