"""End-to-end: the paper report runs with every simulation audited.

This is the CI acceptance gate for the oracle: ``run_all(audit=True)``
routes every experiment behind every figure through
``run_jobs(audit=True)`` (caches bypassed, traces forced, every quantity
reconciled) and must complete without a single violation.  Marked
``slow``: the tier-1 default (``-m "not slow"``) skips it, CI runs it.
"""

import pytest

from repro.experiments.runner import run_all
from repro.sweep import cache as cache_module

pytestmark = [pytest.mark.slow, pytest.mark.audit]


def test_fast_report_runs_fully_audited(monkeypatch):
    monkeypatch.delenv(cache_module.CACHE_DIR_ENV, raising=False)
    cache_module.reset_default_cache()
    try:
        text = run_all(fast=True, audit=True)
    finally:
        cache_module.reset_default_cache()
    assert "audit mode" in text
    # The report itself must be unchanged by auditing.
    unaudited = run_all(fast=True)
    assert text.replace(
        "audit mode: every simulation runs fresh and is reconciled "
        "against its event trace (caches bypassed)\n",
        "",
    ) == unaudited


def test_cli_report_audit_flag(capsys):
    from repro.cli import main

    cache_module.reset_default_cache()
    try:
        assert main(["report", "--fast", "--audit"]) == 0
    finally:
        cache_module.reset_default_cache()
    out = capsys.readouterr().out
    assert "audit mode" in out
