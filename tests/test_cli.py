"""CLI tests (every subcommand, through the public entry point)."""

import pytest

from repro.cli import main


class TestInfo:
    def test_montage_info(self, capsys):
        assert main(["info", "--degree", "1"]) == 0
        out = capsys.readouterr().out
        assert "203" in out
        assert "mProject" in out
        assert "0.0530" in out

    def test_info_from_dax(self, capsys, tmp_path):
        path = tmp_path / "wf.xml"
        assert main(["dax", "--degree", "1", "--output", str(path)]) == 0
        capsys.readouterr()
        assert main(["info", "--dax", str(path)]) == 0
        assert "203" in capsys.readouterr().out


class TestSimulate:
    def test_provisioned(self, capsys):
        assert main([
            "simulate", "--degree", "1", "--processors", "8",
            "--mode", "cleanup",
        ]) == 0
        out = capsys.readouterr().out
        assert "cleanup" in out
        assert "TOTAL" in out
        assert "provisioned" in out

    def test_on_demand_and_contended(self, capsys):
        assert main([
            "simulate", "--degree", "1", "--on-demand", "--contended",
        ]) == 0
        out = capsys.readouterr().out
        assert "on-demand" in out

    def test_trace_dir(self, capsys, tmp_path):
        d = tmp_path / "trace"
        assert main([
            "simulate", "--degree", "1", "--trace-dir", str(d),
        ]) == 0
        assert (d / "tasks.csv").exists()
        assert (d / "storage.csv").exists()

    def test_custom_bandwidth_slows_run(self, capsys):
        main(["simulate", "--degree", "1", "--processors", "1"])
        fast = capsys.readouterr().out
        main(["simulate", "--degree", "1", "--processors", "1",
              "--bandwidth-mbps", "0.5"])
        slow = capsys.readouterr().out
        assert fast != slow

    def test_kernel_choice_is_invisible_in_output(self, capsys):
        base = ["simulate", "--degree", "1", "--mode", "cleanup"]
        assert main([*base, "--kernel", "event"]) == 0
        event_out = capsys.readouterr().out
        assert main([*base, "--kernel", "fast"]) == 0
        fast_out = capsys.readouterr().out
        assert fast_out == event_out

    def test_kernel_fast_handles_contended_link(self, capsys):
        # Contended links run on the fast kernel now (batched-kernel
        # PR); the output must match the event engine's exactly.
        base = ["simulate", "--degree", "1", "--contended"]
        assert main([*base, "--kernel", "event"]) == 0
        event_out = capsys.readouterr().out
        assert main([*base, "--kernel", "fast"]) == 0
        fast_out = capsys.readouterr().out
        assert fast_out == event_out


class TestSweepsAndModes:
    def test_sweep_custom_ladder(self, capsys):
        assert main(["sweep", "--degree", "1", "--processors", "1,4"]) == 0
        out = capsys.readouterr().out
        assert "procs" in out
        assert out.count("\n") >= 4

    def test_modes(self, capsys):
        assert main(["modes", "--degree", "1"]) == 0
        out = capsys.readouterr().out
        for mode in ("remote-io", "regular", "cleanup"):
            assert mode in out

    def test_ccr(self, capsys):
        assert main([
            "ccr", "--degree", "1", "--values", "0.1,1", "--processors", "4",
        ]) == 0
        out = capsys.readouterr().out
        assert "CCR" in out
        assert "4 processors" in out


class TestGanttAndReport:
    def test_gantt(self, capsys):
        assert main(["gantt", "--degree", "1", "--processors", "4"]) == 0
        out = capsys.readouterr().out
        assert "p000 |" in out
        assert "mProject" in out

    def test_report_fast(self, capsys):
        assert main(["report", "--fast"]) == 0
        out = capsys.readouterr().out
        assert "Reproduction report" in out


class TestErrors:
    def test_missing_command(self):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            main(["fnord"])

    def test_dax_requires_output(self):
        with pytest.raises(SystemExit):
            main(["dax", "--degree", "1"])
