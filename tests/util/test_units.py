"""Unit-conversion tests."""

import pytest

from repro.util import units as u


class TestConstants:
    def test_decimal_sizes(self):
        assert u.KB == 1e3
        assert u.MB == 1e6
        assert u.GB == 1e9
        assert u.TB == 1e12

    def test_bandwidth_is_bits(self):
        # 10 Mbps — the paper's link — moves 1.25 MB per second.
        assert 10 * u.MBPS == 1.25e6

    def test_month_is_30_days(self):
        assert u.MONTH == 30 * 24 * 3600


class TestConversions:
    def test_bytes_gb_roundtrip(self):
        assert u.gb_to_bytes(u.bytes_to_gb(123456789.0)) == pytest.approx(
            123456789.0
        )

    def test_bytes_mb_roundtrip(self):
        assert u.mb_to_bytes(u.bytes_to_mb(5.85e6)) == pytest.approx(5.85e6)

    def test_mbps(self):
        assert u.mbps_to_bytes_per_sec(10.0) == 1.25e6

    def test_hours_seconds_roundtrip(self):
        assert u.hours_to_seconds(u.seconds_to_hours(19800.0)) == pytest.approx(
            19800.0
        )


class TestFormatting:
    def test_format_bytes_picks_unit(self):
        assert u.format_bytes(173.46 * u.MB) == "173.46 MB"
        assert u.format_bytes(12 * u.TB) == "12.00 TB"
        assert u.format_bytes(2.229 * u.GB) == "2.23 GB"
        assert u.format_bytes(512.0) == "512 B"

    def test_format_duration_picks_unit(self):
        assert u.format_duration(5.5 * u.HOUR) == "5.50 h"
        assert u.format_duration(18 * u.MINUTE) == "18.0 min"
        assert u.format_duration(42.0) == "42.0 s"

    def test_format_money(self):
        assert u.format_money(0.56) == "$0.560"
        assert u.format_money(34632.0) == "$34,632.00"
