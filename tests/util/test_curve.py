"""StepCurve tests, including a hypothesis check against a reference."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.util.curve import StepCurve


class TestBasics:
    def test_empty_curve_is_constant(self):
        c = StepCurve(3.5)
        assert c.value_at(-10) == 3.5
        assert c.value_at(0) == 3.5
        assert c.final_value() == 3.5
        assert c.integral(0, 10) == pytest.approx(35.0)
        assert len(c) == 0

    def test_single_step(self):
        c = StepCurve()
        c.add(5.0, 2.0)
        assert c.value_at(4.999) == 0.0
        assert c.value_at(5.0) == 2.0  # right-continuous
        assert c.integral(0, 10) == pytest.approx(10.0)

    def test_add_zero_is_noop(self):
        c = StepCurve()
        c.add(1.0, 0.0)
        assert len(c) == 0

    def test_coalesces_same_timestamp(self):
        c = StepCurve()
        c.add(1.0, 2.0)
        c.add(1.0, 3.0)
        assert len(c) == 1
        assert c.value_at(1.0) == 5.0

    def test_out_of_order_updates(self):
        c = StepCurve()
        c.add(10.0, 1.0)
        c.add(5.0, 2.0)  # inserted before the existing point
        assert c.value_at(7.0) == 2.0
        assert c.value_at(10.0) == 3.0
        assert c.integral(0, 12) == pytest.approx(2 * 5 + 3 * 2)

    def test_set_value(self):
        c = StepCurve(1.0)
        c.set_value(2.0, 10.0)
        assert c.value_at(1.0) == 1.0
        assert c.value_at(3.0) == 10.0

    def test_max_value(self):
        c = StepCurve()
        c.add(1.0, 5.0)
        c.add(2.0, -3.0)
        c.add(3.0, 10.0)
        assert c.max_value() == 12.0
        assert c.max_value(1.5, 2.5) == 5.0  # still 5 on [1.5, 2)
        assert c.max_value(2.0, 2.5) == 2.0

    def test_integral_window_edges(self):
        c = StepCurve()
        c.add(1.0, 1.0)
        c.add(2.0, 1.0)
        assert c.integral(1.0, 1.0) == 0.0
        assert c.integral(1.5, 2.5) == pytest.approx(0.5 * 1 + 0.5 * 2)

    def test_integral_reversed_raises(self):
        with pytest.raises(ValueError):
            StepCurve().integral(2.0, 1.0)

    def test_as_arrays(self):
        c = StepCurve()
        c.add(1.0, 2.0)
        c.add(3.0, -1.0)
        t, v = c.as_arrays()
        assert t.tolist() == [1.0, 3.0]
        assert v.tolist() == [2.0, 1.0]

    def test_change_points(self):
        c = StepCurve()
        c.add(2.0, 4.0)
        assert list(c.change_points()) == [(2.0, 4.0)]


@given(
    deltas=st.lists(
        st.tuples(
            st.floats(0.0, 100.0, allow_nan=False),
            st.floats(-50.0, 50.0, allow_nan=False),
        ),
        min_size=1,
        max_size=30,
    )
)
def test_integral_matches_dense_sampling(deltas):
    """Exact integration agrees with a fine Riemann sum on a grid."""
    c = StepCurve()
    for t, d in deltas:
        c.add(t, d)
    t0, t1 = 0.0, 101.0
    exact = c.integral(t0, t1)
    # Riemann sum over all breakpoints (exact for step functions).
    pts = sorted({t0, t1, *(t for t, _ in deltas if t0 < t < t1)})
    riemann = sum(
        c.value_at(a) * (b - a) for a, b in zip(pts[:-1], pts[1:])
    )
    assert exact == pytest.approx(riemann, rel=1e-9, abs=1e-9)


@given(
    deltas=st.lists(
        st.tuples(
            st.floats(0.0, 100.0, allow_nan=False),
            st.floats(-50.0, 50.0, allow_nan=False),
        ),
        max_size=30,
    ),
    split=st.floats(0.0, 100.0, allow_nan=False),
)
def test_integral_additivity(deltas, split):
    """integral(a, c) == integral(a, b) + integral(b, c)."""
    c = StepCurve(1.0)
    for t, d in deltas:
        c.add(t, d)
    total = c.integral(0.0, 100.0)
    parts = c.integral(0.0, split) + c.integral(split, 100.0)
    assert total == pytest.approx(parts, rel=1e-9, abs=1e-6)


@given(
    deltas=st.lists(
        st.tuples(
            st.floats(0.0, 100.0, allow_nan=False),
            st.floats(0.0, 50.0, allow_nan=False),
        ),
        max_size=20,
    )
)
def test_monotone_deltas_make_monotone_curve(deltas):
    """Only-positive deltas yield a non-decreasing curve."""
    c = StepCurve()
    for t, d in deltas:
        c.add(t, d)
    samples = np.linspace(-1.0, 101.0, 57)
    values = [c.value_at(s) for s in samples]
    assert all(b >= a - 1e-12 for a, b in zip(values, values[1:]))
