"""Capacity-planning tests."""

import pytest

from repro.service.arrivals import request_stream, uniform_arrivals
from repro.service.capacity import plan_capacity
from repro.service.simulator import ServiceSimulator
from repro.util.units import HOUR
from repro.workflow.generators import fork_join_workflow

BW = 1.25e6


@pytest.fixture(scope="module")
def burst(montage1):
    """Six 1-degree requests arriving a minute apart."""
    return request_stream(uniform_arrivals(6, 60.0), [montage1])


class TestPlanning:
    def test_finds_minimal_pool(self, burst):
        plan = plan_capacity(burst, objective_p95_seconds=2.0 * HOUR)
        assert plan.feasible
        p = plan.n_processors
        # Minimality: the chosen pool meets the target, one less does not.
        assert plan.chosen.p95_response_time <= 2.0 * HOUR
        if p > 1:
            worse = ServiceSimulator(p - 1, "cleanup").run(burst)
            assert worse.percentile_response_time(95) > 2.0 * HOUR

    def test_tighter_objective_needs_more_processors(self, burst):
        loose = plan_capacity(burst, objective_p95_seconds=6.0 * HOUR)
        tight = plan_capacity(burst, objective_p95_seconds=1.0 * HOUR)
        assert tight.n_processors >= loose.n_processors

    def test_candidates_carry_economics(self, burst):
        plan = plan_capacity(burst, objective_p95_seconds=2.0 * HOUR)
        assert plan.candidates
        for cand in plan.candidates:
            assert cand.economics.n_requests == 6
            assert cand.p95_response_time > 0

    def test_infeasible_objective(self, burst):
        # No pool makes a 1-degree mosaic finish in one second.
        plan = plan_capacity(
            burst, objective_p95_seconds=1.0, max_processors=256
        )
        assert not plan.feasible
        with pytest.raises(ValueError):
            _ = plan.n_processors

    def test_invalid_inputs(self, burst):
        with pytest.raises(ValueError):
            plan_capacity(burst, objective_p95_seconds=0.0)
        with pytest.raises(ValueError):
            plan_capacity([], objective_p95_seconds=10.0)

    def test_synthetic_exact_boundary(self):
        """20 simultaneous 100 s single-task requests, tiny files: a pool
        of P serves them in ceil(20/P) waves; target 3 waves -> P = 7."""
        wf = fork_join_workflow(1, runtime=100.0, file_size=1.0)
        # fork_join_workflow(1) is worker+join = 2 chained tasks; use
        # runtime 50 each -> 100 s per request, still serial per request.
        from repro.service.arrivals import ServiceRequest

        reqs = [ServiceRequest(f"r{i}", wf, 0.0) for i in range(20)]
        plan = plan_capacity(
            reqs, objective_p95_seconds=3 * 200.0 + 1.0, data_mode="regular"
        )
        assert plan.feasible
        assert plan.chosen.p95_response_time <= 601.0
