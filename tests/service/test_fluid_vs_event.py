"""Differential validation: fluid engine vs the event-based simulator.

The fluid engine's claim to correctness is not structural — it is the
window-replay harness: cache-miss sub-streams of the sampled traffic
run cold-start through the event-based :class:`ServiceSimulator`, and
the fluid approximation must land within a few percent of the event
engine's mean miss-path response time in the regime the service
actually operates in (pool wide relative to one workflow's saturating
share, utilization below saturation).
"""

import numpy as np
import pytest

from repro.service.scale import (
    FluidServiceEngine,
    montage_traffic,
    sample_traffic,
    validate_fluid,
)
from repro.service.simulator import ServiceRequest, ServiceSimulator
from repro.sweep.cache import SimCache


@pytest.fixture(scope="module")
def sample():
    # Small enough that event replay of every window stays fast, big
    # enough that windows hold tens of misses.
    spec = montage_traffic(150_000, n_regions=30_000, seed=7)
    return sample_traffic(spec, cache=SimCache())


class TestFluidVsEvent:
    def test_mean_miss_response_within_five_percent(self, sample):
        validation = validate_fluid(
            sample, 512, n_windows=3, cache=SimCache()
        )
        assert len(validation.windows) == 3
        assert validation.mean_error <= 0.05
        assert validation.max_error <= 0.10

    def test_validation_is_deterministic(self, sample):
        a = validate_fluid(sample, 512, n_windows=2, cache=SimCache())
        b = validate_fluid(sample, 512, n_windows=2, cache=SimCache())
        assert [w.event_mean for w in a.windows] == [
            w.event_mean for w in b.windows
        ]
        assert [w.fluid_mean for w in a.windows] == [
            w.fluid_mean for w in b.windows
        ]

    def test_window_bookkeeping(self, sample):
        validation = validate_fluid(
            sample, 512, n_windows=2, cache=SimCache()
        )
        for w in validation.windows:
            assert w.n_misses > 0
            assert w.event_mean > 0
            assert w.rel_error == pytest.approx(
                abs(w.fluid_mean - w.event_mean) / w.event_mean
            )
        total_misses = sum(w.n_misses for w in validation.windows)
        assert validation.projected_event_seconds(
            total_misses
        ) == pytest.approx(
            sum(w.event_seconds for w in validation.windows)
        )

    def test_rejects_zero_windows(self, sample):
        with pytest.raises(ValueError):
            validate_fluid(sample, 512, n_windows=0)

    def test_direct_window_replay_matches_validator(self, sample):
        # Re-derive one window by hand and confirm both engines see the
        # exact stream the validator reports on.
        window = sample.window(sample.horizon / 3, 3_600.0)
        assert window.n_requests == window.n_misses > 0
        workflow = sample.spec.mix[0].workflow
        requests = [
            ServiceRequest(
                request_id=f"w-{i}",
                workflow=workflow,
                arrival_time=float(t),
            )
            for i, t in enumerate(window.times)
        ]
        event = ServiceSimulator(
            512,
            sample.spec.data_mode,
            bandwidth_bytes_per_sec=sample.spec.bandwidth_bytes_per_sec,
        ).run(requests)
        fluid = FluidServiceEngine(512, cache=SimCache()).run(window)
        event_mean = event.mean_response_time()
        fluid_mean = fluid.miss_mean_response_time()
        assert abs(fluid_mean - event_mean) / event_mean <= 0.10

    def test_fluid_wall_time_beats_event_on_windows(self, sample):
        validation = validate_fluid(
            sample, 512, n_windows=2, cache=SimCache()
        )
        event = sum(w.event_seconds for w in validation.windows)
        fluid = sum(w.fluid_seconds for w in validation.windows)
        # The fluid pass over a window must not be slower than event
        # replay of the same window (in practice it is ~100x faster;
        # keep the bound loose so CI noise cannot flake it).
        assert fluid < event


class TestFluidStructure:
    """Structural agreement beyond one number: load ordering."""

    def test_busier_windows_wait_longer_in_both_engines(self, sample):
        # Compare an early (cold cache, more misses) and a late window:
        # whichever waits longer under the event engine must also wait
        # longer under the fluid engine.
        early = sample.window(0.05 * sample.horizon, 3_600.0)
        late = sample.window(0.80 * sample.horizon, 3_600.0)
        workflow = sample.spec.mix[0].workflow

        def event_mean(window):
            requests = [
                ServiceRequest(
                    request_id=f"r-{i}",
                    workflow=workflow,
                    arrival_time=float(t),
                )
                for i, t in enumerate(window.times)
            ]
            return ServiceSimulator(
                256, sample.spec.data_mode
            ).run(requests).mean_response_time()

        def fluid_mean(window):
            return FluidServiceEngine(256, cache=SimCache()).run(
                window
            ).miss_mean_response_time()

        ev = (event_mean(early), event_mean(late))
        fl = (fluid_mean(early), fluid_mean(late))
        assert early.n_misses != late.n_misses
        assert (ev[0] > ev[1]) == (fl[0] > fl[1])
