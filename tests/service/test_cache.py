"""Mosaic-cache tests (the paper's store-vs-recompute recommendation)."""

import numpy as np
import pytest

from repro.core.pricing import AWS_2008
from repro.service.cache import (
    MosaicCache,
    RegionRequest,
    ZipfPopularity,
    popularity_stream,
    simulate_cache_policy,
    sweep_retention,
)
from repro.util.units import MB, MONTH

MOSAIC = 557.9 * MB  # the paper's 2-degree mosaic
GEN_COST = 2.21      # ~the paper's staged 2-degree request cost


class TestZipf:
    def test_probabilities_normalized_and_ranked(self):
        pop = ZipfPopularity(100, exponent=1.2, seed=0)
        probs = [pop.probability(k) for k in range(100)]
        assert sum(probs) == pytest.approx(1.0)
        assert probs == sorted(probs, reverse=True)

    def test_zero_exponent_is_uniform(self):
        pop = ZipfPopularity(10, exponent=0.0, seed=0)
        assert pop.probability(0) == pytest.approx(0.1)
        assert pop.probability(9) == pytest.approx(0.1)

    def test_sampling_deterministic(self):
        a = ZipfPopularity(50, seed=3).sample(100)
        b = ZipfPopularity(50, seed=3).sample(100)
        assert (a == b).all()

    def test_head_dominates(self):
        pop = ZipfPopularity(1000, exponent=1.5, seed=1)
        draws = pop.sample(5000)
        assert (draws < 10).mean() > 0.5

    def test_invalid(self):
        with pytest.raises(ValueError):
            ZipfPopularity(0)
        with pytest.raises(ValueError):
            ZipfPopularity(5, exponent=-1.0)
        with pytest.raises(ValueError):
            ZipfPopularity(5).sample(-1)


class TestPopularityStream:
    def test_deterministic_and_time_ordered(self):
        pop = ZipfPopularity(20, seed=2)
        a = popularity_stream(pop, 100.0, 6.0, seed=7)
        pop2 = ZipfPopularity(20, seed=2)
        b = popularity_stream(pop2, 100.0, 6.0, seed=7)
        assert [(r.time, r.region) for r in a] == [
            (r.time, r.region) for r in b
        ]
        times = [r.time for r in a]
        assert times == sorted(times)
        assert all(t < 6.0 * MONTH for t in times)

    def test_volume_near_rate(self):
        pop = ZipfPopularity(20, seed=2)
        stream = popularity_stream(pop, 200.0, 12.0, seed=1)
        assert 2000 < len(stream) < 2800  # ~2400 expected


class TestMosaicCacheAccounting:
    def test_hit_within_ttl(self):
        cache = MosaicCache(mosaic_bytes=1e9, retention_seconds=10.0)
        assert not cache.lookup("orion", 0.0)
        assert cache.lookup("orion", 5.0)
        # Residency so far: 5 s x 1 GB.
        assert cache._storage_byte_seconds == pytest.approx(5e9)

    def test_miss_after_expiry_charges_full_ttl(self):
        cache = MosaicCache(mosaic_bytes=1e9, retention_seconds=10.0)
        cache.lookup("orion", 0.0)
        assert not cache.lookup("orion", 50.0)  # expired
        assert cache._storage_byte_seconds == pytest.approx(10e9)

    def test_close_accounts_residual(self):
        cache = MosaicCache(mosaic_bytes=1e9, retention_seconds=10.0)
        cache.lookup("orion", 0.0)
        cache.close(4.0)  # horizon before expiry
        assert cache._storage_byte_seconds == pytest.approx(4e9)

    def test_zero_retention_never_caches(self):
        cache = MosaicCache(mosaic_bytes=1e9, retention_seconds=0.0)
        assert not cache.lookup("orion", 0.0)
        assert not cache.lookup("orion", 0.0)
        cache.close(100.0)
        assert cache._storage_byte_seconds == 0.0
        assert cache.hits == 0

    def test_storage_cost_uses_pricing(self):
        cache = MosaicCache(
            mosaic_bytes=1e9, retention_seconds=MONTH, pricing=AWS_2008
        )
        cache.lookup("orion", 0.0)
        cache.close(2 * MONTH)
        # 1 GB for one month at $0.15.
        assert cache.storage_cost == pytest.approx(0.15)


class TestPolicySimulation:
    def _stream(self):
        pop = ZipfPopularity(200, exponent=1.2, seed=11)
        return popularity_stream(pop, 150.0, 24.0, seed=11), 24.0

    def test_zero_retention_recomputes_everything(self):
        stream, horizon = self._stream()
        res = simulate_cache_policy(stream, horizon, 0.0, GEN_COST, MOSAIC)
        assert res.hits == 0
        assert res.misses == len(stream)
        assert res.compute_cost == pytest.approx(GEN_COST * len(stream))
        assert res.storage_cost == 0.0

    def test_hits_plus_misses_is_total(self):
        stream, horizon = self._stream()
        res = simulate_cache_policy(stream, horizon, 6.0, GEN_COST, MOSAIC)
        assert res.hits + res.misses == res.n_requests == len(stream)
        assert 0 < res.hit_rate < 1

    def test_longer_retention_more_hits_more_storage(self):
        stream, horizon = self._stream()
        short = simulate_cache_policy(stream, horizon, 1.0, GEN_COST, MOSAIC)
        long = simulate_cache_policy(stream, horizon, 12.0, GEN_COST, MOSAIC)
        assert long.hits >= short.hits
        assert long.storage_cost > short.storage_cost
        assert long.compute_cost <= short.compute_cost

    def test_caching_beats_no_cache_for_popular_stream(self):
        """The paper's recommendation: with plausible repeat traffic,
        storing popular mosaics beats recomputing on demand."""
        stream, horizon = self._stream()
        results = sweep_retention(
            stream, horizon, [0.0, 3.0, 6.0, 12.0, 24.0], GEN_COST, MOSAIC
        )
        no_cache = results[0]
        best = min(results, key=lambda r: r.total_cost)
        assert best.retention_months > 0
        assert best.total_cost < no_cache.total_cost

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            simulate_cache_policy([], 1.0, -1.0, GEN_COST, MOSAIC)
        with pytest.raises(ValueError):
            simulate_cache_policy([], 1.0, 1.0, -GEN_COST, MOSAIC)

    def test_unpopular_stream_prefers_no_cache(self):
        """Uniform traffic over many regions rarely repeats within the
        horizon — retention only buys storage fees."""
        pop = ZipfPopularity(100_000, exponent=0.0, seed=5)
        stream = popularity_stream(pop, 50.0, 12.0, seed=5)
        results = sweep_retention(
            stream, 12.0, [0.0, 12.0], GEN_COST, MOSAIC
        )
        assert results[0].total_cost <= results[1].total_cost
