"""Property-based service-layer invariants."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.service.arrivals import ServiceRequest
from repro.service.economics import service_economics
from repro.service.simulator import ServiceSimulator
from repro.sim.executor import simulate
from repro.workflow.generators import random_layered_workflow

BW = 1.25e6

streams = st.lists(
    st.tuples(
        st.floats(0.0, 5_000.0, allow_nan=False),  # arrival time
        st.integers(0, 2),                         # workflow variant
    ),
    min_size=1,
    max_size=6,
)


def _workflows():
    return [
        random_layered_workflow(2, 2, seed=11, mean_runtime=40.0),
        random_layered_workflow(3, 2, seed=23, mean_runtime=60.0),
        random_layered_workflow(1, 3, seed=37, mean_runtime=30.0),
    ]


WORKFLOWS = _workflows()
SOLO = {
    (i, p): simulate(wf, p, "cleanup", bandwidth_bytes_per_sec=BW,
                     record_trace=False).makespan
    for i, wf in enumerate(WORKFLOWS)
    for p in (1, 2, 3, 4)
}


def _requests(stream):
    return [
        ServiceRequest(f"r{i}", WORKFLOWS[variant], t)
        for i, (t, variant) in enumerate(stream)
    ]


@settings(max_examples=30, deadline=None)
@given(stream=streams, p=st.integers(1, 4))
def test_every_request_completes_no_faster_than_solo(stream, p):
    """Sharing a pool can only delay a request, never speed it up."""
    result = ServiceSimulator(p, "cleanup", bandwidth_bytes_per_sec=BW).run(
        _requests(stream)
    )
    assert result.n_requests == len(stream)
    by_id = {o.request.request_id: o for o in result.outcomes}
    for i, (t, variant) in enumerate(stream):
        outcome = by_id[f"r{i}"]
        assert outcome.response_time >= SOLO[(variant, p)] - 1e-6
        assert outcome.finished_at >= t


@settings(max_examples=30, deadline=None)
@given(stream=streams, p=st.integers(1, 4))
def test_compute_conservation(stream, p):
    """The pool's busy time equals the requests' summed held time."""
    result = ServiceSimulator(p, "cleanup", bandwidth_bytes_per_sec=BW).run(
        _requests(stream)
    )
    expected = sum(
        WORKFLOWS[variant].total_runtime() for _, variant in stream
    )
    assert result.total_compute_seconds() == pytest.approx(expected)
    busy = result.pool_busy_curve.integral(0.0, result.horizon)
    held = sum(o.result.cpu_busy_seconds for o in result.outcomes)
    assert busy == pytest.approx(held, rel=1e-9)


@settings(max_examples=20, deadline=None)
@given(stream=streams)
def test_bigger_pool_never_slower(stream):
    small = ServiceSimulator(1, "cleanup", bandwidth_bytes_per_sec=BW).run(
        _requests(stream)
    )
    big = ServiceSimulator(8, "cleanup", bandwidth_bytes_per_sec=BW).run(
        _requests(stream)
    )
    assert big.horizon <= small.horizon + 1e-6
    assert big.percentile_response_time(95) <= (
        small.percentile_response_time(95) + 1e-6
    )


@settings(max_examples=20, deadline=None)
@given(stream=streams, p=st.integers(1, 4))
def test_economics_consistency(stream, p):
    result = ServiceSimulator(p, "cleanup", bandwidth_bytes_per_sec=BW).run(
        _requests(stream)
    )
    eco = service_economics(result)
    assert eco.n_requests == len(stream)
    # Idle waste is non-negative: the pool can't bill less than usage.
    assert eco.idle_waste >= -1e-9
    assert eco.pool_cpu_cost >= eco.on_demand_total.cpu_cost - 1e-9
    assert 0.0 <= eco.pool_utilization <= 1.0 + 1e-9
