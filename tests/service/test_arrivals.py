"""Arrival-process tests."""

import numpy as np
import pytest

from repro.service.arrivals import (
    ServiceRequest,
    poisson_arrival_array,
    poisson_arrivals,
    request_stream,
    uniform_arrivals,
)
from repro.workflow.generators import chain_workflow, fork_join_workflow


class TestPoisson:
    def test_deterministic_per_seed(self):
        a = poisson_arrivals(0.01, 10_000.0, seed=5)
        b = poisson_arrivals(0.01, 10_000.0, seed=5)
        assert a == b

    def test_rate_roughly_respected(self):
        times = poisson_arrivals(0.01, 1_000_000.0, seed=1)
        # expect ~10,000 arrivals; allow wide stochastic band
        assert 9_000 < len(times) < 11_000

    def test_sorted_within_horizon(self):
        times = poisson_arrivals(0.05, 1_000.0, seed=2)
        assert times == sorted(times)
        assert all(0 < t < 1_000.0 for t in times)

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            poisson_arrivals(0.0, 10.0, seed=0)
        with pytest.raises(ValueError):
            poisson_arrivals(1.0, 0.0, seed=0)


def _poisson_arrivals_reference(
    rate_per_second: float, horizon_seconds: float, seed: int
) -> list[float]:
    """The historical one-draw-per-iteration implementation, verbatim."""
    rng = np.random.default_rng(seed)
    times = []
    t = 0.0
    while True:
        t += float(rng.exponential(1.0 / rate_per_second))
        if t >= horizon_seconds:
            return times
        times.append(t)


class TestPoissonVectorization:
    """The chunked implementation must replay the old loop exactly."""

    @pytest.mark.parametrize(
        ("rate", "horizon", "seed"),
        [
            (0.01, 10_000.0, 5),       # ~100 arrivals, single chunk
            (0.5, 100_000.0, 17),      # ~50k arrivals
            (2.0, 17.0, 3),            # tiny horizon
            (1e-4, 5_000.0, 9),        # sparse: likely zero arrivals
            (1.0, 1.0, 0),
        ],
    )
    def test_identical_to_sequential_loop(self, rate, horizon, seed):
        assert poisson_arrivals(rate, horizon, seed) == (
            _poisson_arrivals_reference(rate, horizon, seed)
        )

    @pytest.mark.parametrize("chunk", [1, 2, 7, 64])
    def test_chunk_boundary_crossing(self, chunk):
        # Force refill chunks of every awkward size: each boundary must
        # carry the float offset so the cumsum recurrence stays exact.
        rate, horizon, seed = 0.08, 10_000.0, 123
        forced = poisson_arrival_array(rate, horizon, seed, _chunk=chunk)
        assert forced.tolist() == (
            _poisson_arrivals_reference(rate, horizon, seed)
        )

    def test_array_variant_matches_list(self):
        arr = poisson_arrival_array(0.05, 2_000.0, seed=4)
        assert isinstance(arr, np.ndarray)
        assert arr.dtype == np.float64
        assert arr.tolist() == poisson_arrivals(0.05, 2_000.0, seed=4)


class TestUniform:
    def test_spacing(self):
        assert uniform_arrivals(4, 10.0) == [0.0, 10.0, 20.0, 30.0]

    def test_empty(self):
        assert uniform_arrivals(0, 10.0) == []

    def test_invalid(self):
        with pytest.raises(ValueError):
            uniform_arrivals(-1, 10.0)
        with pytest.raises(ValueError):
            uniform_arrivals(1, -10.0)


class TestRequestStream:
    def test_single_choice_is_deterministic(self):
        wf = chain_workflow(2)
        reqs = request_stream([5.0, 1.0, 3.0], [wf])
        assert [r.arrival_time for r in reqs] == [1.0, 3.0, 5.0]
        assert all(r.workflow is wf for r in reqs)
        assert [r.request_id for r in reqs] == [
            "req-00000", "req-00001", "req-00002",
        ]

    def test_mix_respects_weights(self):
        small = chain_workflow(1, name="small")
        big = fork_join_workflow(3, name="big")
        reqs = request_stream(
            uniform_arrivals(400, 1.0), [small, big], seed=3,
            weights=[3.0, 1.0],
        )
        n_small = sum(1 for r in reqs if r.workflow is small)
        assert 250 < n_small < 350  # ~300 expected

    def test_mix_deterministic_per_seed(self):
        choices = [chain_workflow(1, name="a"), chain_workflow(2, name="b")]
        a = request_stream(uniform_arrivals(50, 1.0), choices, seed=9)
        b = request_stream(uniform_arrivals(50, 1.0), choices, seed=9)
        assert [r.workflow.name for r in a] == [r.workflow.name for r in b]

    def test_invalid_weights(self):
        wf = chain_workflow(1)
        with pytest.raises(ValueError):
            request_stream([0.0], [wf, wf], weights=[1.0])
        with pytest.raises(ValueError):
            request_stream([0.0], [wf, wf], weights=[-1.0, 1.0])
        with pytest.raises(ValueError):
            request_stream([0.0], [])

    def test_negative_arrival_rejected(self):
        with pytest.raises(ValueError):
            ServiceRequest("r", chain_workflow(1), -1.0)
