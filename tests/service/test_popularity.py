"""Zipf popularity determinism and tail behavior at scale."""

import numpy as np
import pytest

from repro.service.cache import ZipfPopularity, popularity_stream


class TestZipfDeterminism:
    def test_million_draws_reproducible(self):
        a = ZipfPopularity(10_000, seed=11).sample(1_000_000)
        b = ZipfPopularity(10_000, seed=11).sample(1_000_000)
        assert np.array_equal(a, b)

    def test_seeds_differ(self):
        a = ZipfPopularity(1_000, seed=1).sample(10_000)
        b = ZipfPopularity(1_000, seed=2).sample(10_000)
        assert not np.array_equal(a, b)

    def test_draws_within_range(self):
        draws = ZipfPopularity(500, seed=3).sample(100_000)
        assert draws.min() >= 0
        assert draws.max() < 500


class TestZipfShape:
    def test_rank_frequency_follows_exponent(self):
        # With exponent 1, region k is ~(k+1)x rarer than region 0;
        # check the empirical head ratios at a million draws.
        pop = ZipfPopularity(10_000, exponent=1.0, seed=5)
        draws = pop.sample(1_000_000)
        counts = np.bincount(draws, minlength=10_000)
        assert counts[0] > counts[9] > counts[99]
        ratio = counts[0] / counts[9]
        assert 8.0 < ratio < 12.5  # ideal 10, wide stochastic band

    def test_tail_mass_is_long(self):
        # Zipf-1 over 10k regions: the top 100 regions hold roughly
        # half the mass, the rest spreads over thousands of regions.
        pop = ZipfPopularity(10_000, exponent=1.0, seed=7)
        draws = pop.sample(1_000_000)
        counts = np.bincount(draws, minlength=10_000)
        head = counts[:100].sum() / counts.sum()
        assert 0.4 < head < 0.65
        assert (counts > 0).sum() > 5_000  # the tail is actually hit

    def test_higher_exponent_concentrates(self):
        flat = ZipfPopularity(1_000, exponent=0.5, seed=9).sample(200_000)
        steep = ZipfPopularity(1_000, exponent=2.0, seed=9).sample(200_000)
        top_flat = np.bincount(flat, minlength=1000)[0]
        top_steep = np.bincount(steep, minlength=1000)[0]
        assert top_steep > top_flat

    def test_uniform_at_zero_exponent(self):
        pop = ZipfPopularity(100, exponent=0.0, seed=13)
        assert pop.probability(0) == pytest.approx(0.01)
        assert pop.probability(99) == pytest.approx(0.01)


class TestPopularityStream:
    def test_deterministic_per_seed(self):
        a = popularity_stream(
            ZipfPopularity(100, seed=3), 2_000.0, 0.5, seed=21
        )
        b = popularity_stream(
            ZipfPopularity(100, seed=3), 2_000.0, 0.5, seed=21
        )
        assert [(r.time, r.region) for r in a] == [
            (r.time, r.region) for r in b
        ]

    def test_times_sorted_within_horizon(self):
        stream = popularity_stream(
            ZipfPopularity(50, seed=1), 5_000.0, 0.25, seed=4
        )
        times = [r.time for r in stream]
        assert times == sorted(times)
        assert all(0 < t < 0.25 * 2_592_000.0 for t in times)
