"""Portal façade tests (Figure 2 end-to-end)."""

import pytest

from repro.service.portal import MontagePortal, MosaicRequest
from repro.util.units import HOUR, MONTH


@pytest.fixture(scope="module")
def portal():
    return MontagePortal(
        n_processors=32, cache_retention_months=12.0
    )


class TestRequestConstruction:
    def test_catalog_lookup(self, portal):
        req = portal.request("m17", 1.0, arrival_time=5.0)
        assert req.region.name == "M17"
        assert req.product_key == ("M17", 1.0)

    def test_validation(self, portal):
        with pytest.raises(ValueError):
            MosaicRequest(portal.request("m17", 1.0).region, 0.0, 0.0)
        with pytest.raises(KeyError):
            portal.request("Narnia", 1.0)
        with pytest.raises(ValueError):
            MontagePortal(4, cache_retention_months=-1.0)


class TestServing:
    def test_repeat_requests_hit_the_cache(self, portal):
        reqs = [
            portal.request("orion", 1.0, 0.0),
            portal.request("orion", 1.0, 1.0 * MONTH),
            portal.request("orion", 1.0, 2.0 * MONTH),
        ]
        report = portal.serve(reqs)
        assert report.n_requests == 3
        assert report.hit_rate == pytest.approx(2 / 3)
        hits = [f for f in report.fulfillments if f.cache_hit]
        miss = [f for f in report.fulfillments if not f.cache_hit][0]
        # A hit serves the 173 MB mosaic: fast and cheap.
        for h in hits:
            assert h.response_time < miss.response_time
            assert h.cost == pytest.approx(0.17346 * 0.16, rel=1e-3)
        assert miss.cost == pytest.approx(0.615, abs=0.02)

    def test_distinct_products_do_not_collide(self, portal):
        reqs = [
            portal.request("orion", 1.0, 0.0),
            portal.request("m17", 1.0, 10.0),     # other region
            portal.request("orion", 2.0, 20.0),   # other size
        ]
        report = portal.serve(reqs)
        assert report.hit_rate == 0.0

    def test_zero_retention_never_hits(self):
        portal = MontagePortal(32, cache_retention_months=0.0)
        reqs = [portal.request("orion", 1.0, float(i)) for i in range(3)]
        report = portal.serve(reqs)
        assert report.hit_rate == 0.0
        assert report.cache_storage_cost == 0.0

    def test_cache_expiry(self):
        portal = MontagePortal(32, cache_retention_months=1.0)
        reqs = [
            portal.request("orion", 1.0, 0.0),
            portal.request("orion", 1.0, 2.0 * MONTH),  # expired
        ]
        report = portal.serve(reqs)
        assert report.hit_rate == 0.0
        assert report.cache_storage_cost > 0  # TTL rent was still paid

    def test_prestaged_inputs_shed_ingress_fee(self):
        plain = MontagePortal(32)
        staged = MontagePortal(32, prestage_inputs=True)
        req = [MosaicRequest(plain.request("m17", 2.0).region, 2.0, 0.0)]
        diff = (
            plain.serve(req).total_cost - staged.serve(req).total_cost
        )
        # Exactly the 2-degree input transfer fee (~$0.085).
        assert diff == pytest.approx(0.0855, abs=0.002)

    def test_caching_pays_for_popular_traffic(self):
        cached = MontagePortal(32, cache_retention_months=12.0)
        uncached = MontagePortal(32)
        reqs = [
            MontagePortal.request(cached, "orion", 1.0, i * 7.0 * 24 * HOUR)
            for i in range(10)
        ]
        assert cached.serve(reqs).total_cost < uncached.serve(reqs).total_cost

    def test_report_aggregates(self, portal):
        reqs = [
            portal.request("m13", 1.0, 0.0),
            portal.request("m13", 1.0, HOUR),
        ]
        report = portal.serve(reqs)
        assert report.total_cost == pytest.approx(
            sum(f.cost for f in report.fulfillments)
            + report.cache_storage_cost
        )
        assert report.cost_per_request == pytest.approx(
            report.total_cost / 2
        )
        assert 0.0 < report.pool_utilization <= 1.0
        assert report.mean_response_time() > 0

    def test_empty_period(self, portal):
        report = portal.serve([])
        assert report.n_requests == 0
        assert report.total_cost == 0.0
        assert report.mean_response_time() == 0.0
