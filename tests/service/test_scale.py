"""The fluid service engine: summaries, traffic, cache model, engine.

The differential tests against the event simulator live in
``test_fluid_vs_event.py``; this module covers the pieces the fluid
engine is assembled from, each against an independent oracle:

* class summaries vs direct fast-kernel runs (and blob memoization);
* the vectorized TTL cache vs the sequential :class:`MosaicCache` loop;
* engine invariants (zero traffic, overload backlog, pool
  monotonicity, hit-rate effects) and the economics identities;
* capacity planning and autoscaling at scale.
"""

import numpy as np
import pytest

from repro.core.pricing import AWS_2008
from repro.montage.generator import montage_workflow
from repro.provisioning import AutoscalePolicy, evaluate_autoscale
from repro.service.cache import MosaicCache
from repro.service.capacity import plan_capacity_at_scale
from repro.service.scale import (
    EVENT_FEASIBLE_REQUESTS,
    FluidServiceEngine,
    MixComponent,
    TrafficSpec,
    _resolve_ttl_cache,
    montage_traffic,
    resolve_service_engine,
    sample_traffic,
)
from repro.service.summaries import summarize_class, summarize_mix
from repro.sim.executor import ExecutionEnvironment
from repro.sim.kernel import run_fast_kernel
from repro.sweep.cache import SimCache
from repro.util.units import MONTH


@pytest.fixture(scope="module")
def wf1():
    return montage_workflow(1.0)


@pytest.fixture(scope="module")
def summary1(wf1):
    return summarize_class(wf1, cache=SimCache())


class TestClassSummary:
    def test_ladder_values_match_direct_kernel_runs(self, wf1, summary1):
        for share in (1, 8, summary1.saturating_share):
            direct = run_fast_kernel(
                wf1,
                ExecutionEnvironment(n_processors=share),
                data_mode="cleanup",
            )
            assert summary1.makespan(share) == direct.makespan
            assert summary1.busy(share) == pytest.approx(
                direct.cpu_busy_seconds
            )

    def test_ladder_ends_at_saturation(self, summary1):
        # The last two rungs have exactly equal makespans, and no
        # earlier consecutive pair does.
        spans = summary1.makespans
        assert spans[-1] == spans[-2]
        assert all(a > b for a, b in zip(spans[:-2], spans[1:-1]))

    def test_interpolation_monotone_between_rungs(self, summary1):
        shares = np.linspace(1, summary1.saturating_share, 50)
        spans = [summary1.makespan(s) for s in shares]
        assert all(a >= b - 1e-9 for a, b in zip(spans, spans[1:]))

    def test_flat_beyond_saturation(self, summary1):
        assert summary1.makespan(10 * summary1.saturating_share) == (
            summary1.makespans[-1]
        )

    def test_blob_memoization_round_trips(self, wf1):
        cache = SimCache()
        first = summarize_class(wf1, cache=cache)
        again = summarize_class(wf1, cache=cache)
        assert again == first

    def test_extra_shares_appear_on_ladder(self, wf1):
        summary = summarize_class(wf1, extra_shares=(48,), cache=SimCache())
        assert 48 in summary.shares
        direct = run_fast_kernel(
            wf1,
            ExecutionEnvironment(n_processors=48),
            data_mode="cleanup",
        )
        assert summary.makespan(48) == direct.makespan

    def test_mosaic_bytes_from_workflow_file(self, wf1, summary1):
        assert summary1.mosaic_bytes == (
            wf1.file("mosaic.fits").size_bytes
        )


class TestVectorizedTTLCache:
    """The columnar TTL resolve must replay MosaicCache exactly."""

    def _reference(self, regions, times, ttl, horizon, mosaic_bytes):
        cache = MosaicCache(
            mosaic_bytes=mosaic_bytes, retention_seconds=ttl
        )
        hits = np.array(
            [cache.lookup(int(r), float(t)) for r, t in zip(regions, times)]
        )
        cache.close(horizon)
        return hits, cache._storage_byte_seconds

    @pytest.mark.parametrize("ttl_months", [0.0, 0.05, 0.5, 2.0])
    def test_matches_sequential_loop(self, ttl_months):
        rng = np.random.default_rng(42)
        n = 5_000
        times = np.sort(rng.uniform(0.0, MONTH, size=n))
        regions = rng.integers(0, 200, size=n)
        ttl = ttl_months * MONTH
        mosaic_bytes = 7e6
        hits, residency = _resolve_ttl_cache(
            regions.astype(np.int64),
            times,
            ttl,
            MONTH,
            n_classes=1,
            n_regions=200,
            mosaic_bytes=np.array([mosaic_bytes]),
        )
        ref_hits, ref_bytes = self._reference(
            regions, times, ttl, MONTH, mosaic_bytes
        )
        assert np.array_equal(hits, ref_hits)
        assert float(residency[0]) == pytest.approx(ref_bytes, rel=1e-12)

    def test_classes_partition_the_key_space(self):
        # Same region in different classes must not collide.
        times = np.array([0.0, 10.0, 20.0, 30.0])
        classes = np.array([0, 1, 0, 1], dtype=np.int64)
        regions = np.array([5, 5, 5, 5], dtype=np.int64)
        keys = classes * 100 + regions
        hits, residency = _resolve_ttl_cache(
            keys, times, 1_000.0, 100.0, 2, 100,
            np.array([1.0, 10.0]),
        )
        assert hits.tolist() == [False, False, True, True]
        assert residency[0] == pytest.approx(20.0 + 80.0)
        assert residency[1] == pytest.approx((20.0 + 70.0) * 10.0)


class TestTrafficSampling:
    def test_deterministic_per_seed(self):
        spec = montage_traffic(50_000, n_regions=500, seed=3)
        a = sample_traffic(spec)
        b = sample_traffic(spec)
        assert np.array_equal(a.times, b.times)
        assert np.array_equal(a.region, b.region)
        assert np.array_equal(a.hit, b.hit)

    def test_zero_retention_never_hits(self):
        spec = montage_traffic(
            50_000, n_regions=100, retention_months=0.0, seed=5
        )
        sample = sample_traffic(spec)
        assert sample.hit_rate == 0.0
        assert sample.residency_byte_seconds.sum() == 0.0

    def test_popular_regions_drive_hits(self):
        few = sample_traffic(
            montage_traffic(100_000, n_regions=50, seed=1)
        )
        many = sample_traffic(
            montage_traffic(100_000, n_regions=500_000, seed=1)
        )
        assert few.hit_rate > many.hit_rate

    def test_mix_weights_respected(self):
        spec = TrafficSpec(
            requests_per_month=100_000,
            horizon_months=0.5,
            mix=(
                MixComponent(montage_workflow(1.0), weight=3.0),
                MixComponent(montage_workflow(2.0), weight=1.0),
            ),
            n_regions=1_000,
            seed=9,
        )
        sample = sample_traffic(spec, cache=SimCache())
        share_small = (sample.class_idx == 0).mean()
        assert 0.72 < share_small < 0.78  # ~0.75 expected

    def test_window_extracts_rezeroed_misses(self):
        spec = montage_traffic(200_000, n_regions=1_000, seed=2)
        sample = sample_traffic(spec)
        window = sample.window(100_000.0, 3_600.0)
        assert window.n_requests == window.n_misses
        assert (window.times >= 0).all()
        assert (window.times < 3_600.0).all()
        mask = (
            (sample.times >= 100_000.0)
            & (sample.times < 103_600.0)
            & ~sample.hit
        )
        assert window.n_requests == int(mask.sum())


@pytest.fixture(scope="module")
def traffic_sample():
    spec = montage_traffic(200_000, n_regions=20_000, seed=11)
    return sample_traffic(spec)


class TestFluidEngine:
    def test_zero_traffic_rejected_by_spec(self):
        with pytest.raises(ValueError):
            montage_traffic(0.0)

    def test_pool_monotonicity(self, traffic_sample):
        waits = []
        for pool in (128, 256, 512):
            result = FluidServiceEngine(pool).run(traffic_sample)
            waits.append(result.miss_mean_response_time())
        assert waits[0] >= waits[1] >= waits[2]

    def test_overload_accumulates_backlog(self, traffic_sample):
        starved = FluidServiceEngine(8).run(traffic_sample)
        ample = FluidServiceEngine(2048).run(traffic_sample)
        assert starved.peak_backlog() > 100.0
        assert ample.peak_backlog() < starved.peak_backlog()
        assert starved.pool_utilization() > ample.pool_utilization()

    def test_hits_are_transfer_only(self, traffic_sample):
        result = FluidServiceEngine(512).run(traffic_sample)
        responses = result.response_times()
        hits = traffic_sample.hit
        spec = traffic_sample.spec
        expected = (
            spec.mix[0].workflow.file("mosaic.fits").size_bytes
            / spec.bandwidth_bytes_per_sec
        )
        assert np.allclose(responses[hits], expected)
        assert (responses[~hits] > expected).all()

    def test_response_column_read_only_and_cached(self, traffic_sample):
        result = FluidServiceEngine(512).run(traffic_sample)
        col = result.response_times()
        assert col is result.response_times()
        assert not col.flags.writeable
        assert result.mean_response_time() == pytest.approx(
            float(col.mean())
        )

    def test_trajectories_cover_horizon(self, traffic_sample):
        engine = FluidServiceEngine(512, epoch_seconds=7200.0)
        result = engine.run(traffic_sample)
        n_epochs = int(np.ceil(traffic_sample.horizon / 7200.0))
        for name in (
            "epoch_start", "arrival_rate", "utilization",
            "backlog_jobs", "wait", "pool", "mean_response",
            "p95_response", "cost_per_request",
        ):
            assert result.trajectories[name].shape == (n_epochs,), name

    def test_economics_identities(self, traffic_sample):
        result = FluidServiceEngine(512).run(traffic_sample)
        eco = result.economics
        assert eco.n_requests == traffic_sample.n_requests
        assert eco.n_misses == traffic_sample.n_misses
        assert eco.hit_rate == pytest.approx(traffic_sample.hit_rate)
        assert eco.total_cost == pytest.approx(
            eco.pool_cpu_cost
            + eco.on_demand_total.data_management_cost
            + eco.serve_cost
            + eco.cache_storage_cost
        )
        assert eco.cost_per_request == pytest.approx(
            eco.total_cost / eco.n_requests
        )
        # The pool bill is the provisioned pool held for the horizon.
        assert eco.pool_processor_seconds == pytest.approx(
            512 * traffic_sample.horizon
        )
        assert eco.pool_cpu_cost == pytest.approx(
            AWS_2008.cpu_cost(
                eco.pool_processor_seconds, n_instances=512
            )
        )
        assert eco.cache_storage_cost == pytest.approx(
            AWS_2008.storage_cost(
                float(traffic_sample.residency_byte_seconds.sum())
            )
        )

    def test_controller_resizes_pool(self, traffic_sample):
        engine = FluidServiceEngine(512)
        result = engine.run(
            traffic_sample,
            controller=lambda e, state: 256 if e % 2 else 512,
        )
        pools = np.unique(result.trajectories["pool"])
        assert set(pools.tolist()) == {256, 512}

    def test_rejects_bad_arguments(self):
        with pytest.raises(ValueError):
            FluidServiceEngine(0)
        with pytest.raises(ValueError):
            FluidServiceEngine(8, epoch_seconds=0.0)


class TestEngineResolution:
    def test_explicit_engines_pass_through(self):
        assert resolve_service_engine("event", 10**7) == "event"
        assert resolve_service_engine("fluid", 1) == "fluid"

    def test_auto_switches_on_stream_size(self):
        assert resolve_service_engine(
            "auto", EVENT_FEASIBLE_REQUESTS
        ) == "event"
        assert resolve_service_engine(
            "auto", EVENT_FEASIBLE_REQUESTS + 1
        ) == "fluid"

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError):
            resolve_service_engine("warp", 10)


class TestCapacityAtScale:
    def test_plan_meets_objective_minimally(self, traffic_sample):
        plan = plan_capacity_at_scale(
            traffic_sample, objective_p95_seconds=3_600.0
        )
        assert plan.feasible
        chosen = plan.chosen
        assert chosen.meets_objective
        assert chosen.p95_miss_response_time <= 3_600.0
        # One processor fewer must miss the objective.
        smaller = FluidServiceEngine(chosen.n_processors - 1).run(
            traffic_sample
        )
        misses = ~traffic_sample.hit
        p95 = float(
            np.percentile(smaller.response_times()[misses], 95.0)
        )
        assert p95 > 3_600.0

    def test_infeasible_objective_reports_candidates(self, traffic_sample):
        plan = plan_capacity_at_scale(
            traffic_sample,
            objective_p95_seconds=1.0,
            max_processors=64,
        )
        assert not plan.feasible
        assert plan.candidates
        with pytest.raises(ValueError):
            _ = plan.n_processors


class TestAutoscale:
    def test_policy_validation(self):
        with pytest.raises(ValueError):
            AutoscalePolicy(min_processors=0, max_processors=8)
        with pytest.raises(ValueError):
            AutoscalePolicy(min_processors=8, max_processors=4)
        with pytest.raises(ValueError):
            AutoscalePolicy(
                min_processors=1, max_processors=8, scale_factor=1.0
            )
        with pytest.raises(ValueError):
            AutoscalePolicy(
                min_processors=1, max_processors=8,
                low_utilization=0.9, high_utilization=0.8,
            )

    def test_pool_stays_within_bounds(self, traffic_sample):
        policy = AutoscalePolicy(min_processors=64, max_processors=1024)
        outcome = evaluate_autoscale(traffic_sample, policy, 256)
        pools = outcome.pool_trajectory
        assert pools.min() >= 64
        assert pools.max() <= 1024
        assert outcome.peak_pool == int(pools.max())
        assert outcome.mean_pool == pytest.approx(float(pools.mean()))

    def test_cooldown_limits_resize_rate(self, traffic_sample):
        policy = AutoscalePolicy(
            min_processors=16, max_processors=4096, cooldown_epochs=4
        )
        outcome = evaluate_autoscale(traffic_sample, policy, 64)
        pools = outcome.pool_trajectory
        changes = np.flatnonzero(np.diff(pools) != 0)
        assert (np.diff(changes) >= 4).all()

    def test_elasticity_saves_on_overprovisioned_baseline(
        self, traffic_sample
    ):
        # A baseline sized for the cold-start transient idles later;
        # scaling down must cost strictly less than holding it.
        policy = AutoscalePolicy(min_processors=64, max_processors=4096)
        outcome = evaluate_autoscale(traffic_sample, policy, 2048)
        assert outcome.scaled_cost < outcome.fixed_cost
        assert outcome.cost_savings == pytest.approx(
            outcome.fixed_cost - outcome.scaled_cost
        )
        assert 0.0 < outcome.savings_fraction < 1.0
