"""Shared-pool service simulator tests, including exact queueing scenarios."""

import pytest

from repro.service.arrivals import ServiceRequest, request_stream, uniform_arrivals
from repro.service.simulator import ServiceSimulator
from repro.sim.executor import simulate
from repro.workflow.generators import chain_workflow

BW = 1.25e6
F = 1.25e6


def _requests(times, wf):
    return [
        ServiceRequest(f"r{i}", wf, t) for i, t in enumerate(times)
    ]


class TestSingleRequestEquivalence:
    def test_matches_standalone_simulation(self, montage1):
        solo = simulate(montage1, 16, "cleanup", record_trace=False)
        svc = ServiceSimulator(16, "cleanup").run(
            _requests([0.0], montage1)
        )
        outcome = svc.outcomes[0]
        assert outcome.response_time == pytest.approx(solo.makespan)
        assert outcome.result.bytes_in == pytest.approx(solo.bytes_in)
        assert outcome.result.bytes_out == pytest.approx(solo.bytes_out)
        assert outcome.result.storage_byte_seconds == pytest.approx(
            solo.storage_byte_seconds
        )
        assert outcome.result.compute_seconds == pytest.approx(
            solo.compute_seconds
        )

    def test_delayed_arrival_shifts_clock_only(self, montage1):
        a = ServiceSimulator(16).run(_requests([0.0], montage1))
        b = ServiceSimulator(16).run(_requests([5_000.0], montage1))
        assert b.outcomes[0].response_time == pytest.approx(
            a.outcomes[0].response_time
        )
        assert b.horizon == pytest.approx(a.horizon + 5_000.0)


class TestQueueing:
    """chain(1) with runtime 100 and 1-second transfers: exact timings."""

    @pytest.fixture()
    def wf(self):
        return chain_workflow(1, runtime=100.0, file_size=F)

    def test_two_requests_one_processor_serialize(self, wf):
        svc = ServiceSimulator(1, "regular", bandwidth_bytes_per_sec=BW)
        res = svc.run(_requests([0.0, 0.0], wf))
        # r0: stage [0,1], run [1,101], out [101,102].
        # r1: staged concurrently (own link), queued for the processor
        # until 101: run [101,201], out [201,202].
        times = sorted(o.response_time for o in res.outcomes)
        assert times[0] == pytest.approx(102.0)
        assert times[1] == pytest.approx(202.0)

    def test_two_requests_two_processors_parallel(self, wf):
        svc = ServiceSimulator(2, "regular", bandwidth_bytes_per_sec=BW)
        res = svc.run(_requests([0.0, 0.0], wf))
        for o in res.outcomes:
            assert o.response_time == pytest.approx(102.0)

    def test_fcfs_priority(self, wf):
        svc = ServiceSimulator(1, "regular", bandwidth_bytes_per_sec=BW)
        res = svc.run(_requests([0.0, 10.0], wf))
        by_id = {o.request.request_id: o for o in res.outcomes}
        # The earlier arrival runs first.
        assert by_id["r0"].finished_at < by_id["r1"].finished_at

    def test_peak_concurrency_and_utilization(self, wf):
        svc = ServiceSimulator(4, "regular", bandwidth_bytes_per_sec=BW)
        res = svc.run(_requests([0.0] * 4, wf))
        assert res.peak_concurrency() == 4
        # 4 x 100 busy seconds over 4 procs x 102 s horizon.
        assert res.pool_utilization() == pytest.approx(400.0 / (4 * 102.0))


class TestAggregates:
    def test_percentiles_and_means(self, montage1):
        reqs = request_stream(uniform_arrivals(4, 300.0), [montage1])
        res = ServiceSimulator(64).run(reqs)
        times = res.response_times()
        assert res.mean_response_time() == pytest.approx(times.mean())
        assert res.percentile_response_time(100.0) == pytest.approx(
            times.max()
        )
        assert res.n_requests == 4

    def test_total_compute_scales_with_requests(self, montage1):
        reqs = request_stream(uniform_arrivals(3, 100.0), [montage1])
        res = ServiceSimulator(200).run(reqs)
        assert res.total_compute_seconds() == pytest.approx(
            3 * montage1.total_runtime()
        )

    def test_empty_stream(self):
        res = ServiceSimulator(4).run([])
        assert res.n_requests == 0
        assert res.horizon == 0.0
        assert res.mean_response_time() == 0.0

    def test_more_processors_never_hurt_p95(self, montage1):
        reqs = request_stream(uniform_arrivals(4, 60.0), [montage1])
        small = ServiceSimulator(8).run(reqs)
        big = ServiceSimulator(128).run(reqs)
        assert big.percentile_response_time(95) <= (
            small.percentile_response_time(95) + 1e-6
        )


class TestColumnarCaching:
    """Aggregates derive from numpy columns cached on first access."""

    def test_response_times_cached_and_read_only(self, montage1):
        reqs = request_stream(uniform_arrivals(3, 200.0), [montage1])
        res = ServiceSimulator(64).run(reqs)
        first = res.response_times()
        assert first is res.response_times()  # same array object reused
        assert not first.flags.writeable
        # The cached column matches the per-outcome values exactly.
        assert first.tolist() == [o.response_time for o in res.outcomes]

    def test_scalar_aggregates_cached(self, montage1):
        reqs = request_stream(uniform_arrivals(2, 500.0), [montage1])
        res = ServiceSimulator(32).run(reqs)
        total = res.total_compute_seconds()
        peak = res.peak_concurrency()
        assert res.total_compute_seconds() == total
        assert res.peak_concurrency() == peak
        assert res._total_compute_seconds == total
        assert res._peak_concurrency == peak
