"""Service-billing tests."""

import pytest

from repro.core.pricing import AWS_2008
from repro.service.arrivals import ServiceRequest
from repro.service.economics import service_economics
from repro.service.simulator import ServiceSimulator
from repro.workflow.generators import chain_workflow

BW = 1.25e6
F = 1.25e6


def _run(n_procs, times, wf, **kw):
    return ServiceSimulator(
        n_procs, "regular", bandwidth_bytes_per_sec=BW, **kw
    ).run([ServiceRequest(f"r{i}", wf, t) for i, t in enumerate(times)])


class TestEconomics:
    @pytest.fixture(scope="class")
    def result(self):
        wf = chain_workflow(1, runtime=100.0, file_size=F)
        return _run(2, [0.0, 0.0], wf)

    def test_pool_bill_by_hand(self, result):
        eco = service_economics(result)
        # pool: 2 procs x 102 s horizon x $0.1/3600.
        assert eco.pool_cpu_cost == pytest.approx(2 * 102.0 / 36000.0)
        # on-demand CPU: 200 compute seconds.
        assert eco.on_demand_total.cpu_cost == pytest.approx(200.0 / 36000.0)

    def test_idle_waste(self, result):
        eco = service_economics(result)
        # 2 x 102 held - 200 used = 4 idle processor-seconds.
        assert eco.idle_waste == pytest.approx(4.0 / 36000.0)

    def test_per_request_costs(self, result):
        eco = service_economics(result)
        assert eco.n_requests == 2
        assert eco.cost_per_request_pool == pytest.approx(
            eco.total_pool_bill / 2
        )
        assert eco.cost_per_request_on_demand == pytest.approx(
            eco.on_demand_total.total / 2
        )
        # Pool accounting is never cheaper than resources-used accounting.
        assert eco.cost_per_request_pool >= eco.cost_per_request_on_demand

    def test_longer_period_costs_more(self, result):
        short = service_economics(result)
        long = service_economics(result, period_seconds=result.horizon * 10)
        assert long.pool_cpu_cost == pytest.approx(
            short.pool_cpu_cost * 10
        )
        # DM fees are unchanged.
        assert long.on_demand_total.total == pytest.approx(
            short.on_demand_total.total
        )

    def test_period_shorter_than_horizon_rejected(self, result):
        with pytest.raises(ValueError):
            service_economics(result, period_seconds=result.horizon / 2)

    def test_transfer_fees_counted_once_per_request(self, result):
        eco = service_economics(result)
        # Each request moves 1.25 MB in and out.
        assert eco.on_demand_total.transfer_in_cost == pytest.approx(
            2 * 1.25e6 / 1e9 * 0.10
        )
        assert eco.on_demand_total.transfer_out_cost == pytest.approx(
            2 * 1.25e6 / 1e9 * 0.16
        )

    def test_empty_service(self):
        res = ServiceSimulator(4).run([])
        eco = service_economics(res, period_seconds=100.0)
        assert eco.n_requests == 0
        assert eco.cost_per_request_pool == 0.0
        assert eco.on_demand_total.total == 0.0
        assert eco.pool_cpu_cost == pytest.approx(
            AWS_2008.cpu_cost(400.0)
        )


class TestMontageService:
    def test_utilization_improves_per_request_economics(self, montage1):
        """A busier pool amortizes better — the paper's core Q2 point."""
        lone = _run_montage(montage1, n_requests=1)
        busy = _run_montage(montage1, n_requests=8)
        assert busy.pool_utilization >= lone.pool_utilization
        assert busy.cost_per_request_pool < lone.cost_per_request_pool


def _run_montage(wf, n_requests):
    times = [i * 120.0 for i in range(n_requests)]
    result = ServiceSimulator(32, "cleanup").run(
        [ServiceRequest(f"r{i}", wf, t) for i, t in enumerate(times)]
    )
    return service_economics(result)
